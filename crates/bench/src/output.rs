//! Table printing and result persistence.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Where results land (created on demand): `CILKM_BENCH_OUT` if set,
/// otherwise `bench_out/` at the workspace root — regardless of the
/// working directory cargo ran us from.
pub fn out_dir() -> PathBuf {
    let p = match std::env::var("CILKM_BENCH_OUT") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../bench_out")
            .components()
            .collect(),
    };
    let _ = fs::create_dir_all(&p);
    p
}

/// A simple column-aligned table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut l = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(l, "{:>w$}  ", c, w = widths[i]);
            }
            l.trim_end().to_string()
        };
        let _ = writeln!(s, "{}", line(&self.header, &widths));
        let _ = writeln!(
            s,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(s, "{}", line(row, &widths));
        }
        s
    }

    /// Prints to stdout and writes `<name>.csv` under the output dir.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        let path = out_dir().join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(written to {})\n", path.display());
        }
    }
}

/// Writes the stable-schema `BENCH_<name>.json` perf-trajectory point in
/// the flat-document shape `cilkm-trend` compares: `schema_version`,
/// `bench`, then the given fields in order. Values are pre-rendered JSON
/// scalars; keys ending `_ns` / `_pct` are what the trend gate treats as
/// lower-is-better costs, everything else as workload description.
pub fn write_bench_json(name: &str, fields: &[(String, String)]) {
    let mut s = String::from("{\n  \"schema_version\": 1,\n");
    let _ = writeln!(s, "  \"bench\": \"{name}\",");
    let lines: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    s.push_str(&lines.join(",\n"));
    s.push_str("\n}\n");
    let path = out_dir().join(format!("BENCH_{name}.json"));
    if let Err(e) = fs::write(&path, s) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(written to {})\n", path.display());
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("long-name"));
    }

    #[test]
    fn durations_format_by_magnitude() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00us");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000s");
    }
}
