//! Criterion microbenchmarks of the individual data structures the
//! runtime is built from: the Chase–Lev deque, the SPA map, the hypermap
//! hash table, and the pennant bag. These are the per-operation costs
//! that compose into the paper's figures.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use cilkm_core::hypermap::HyperMap;
use cilkm_graph::Bag;
use cilkm_runtime::deque::{deque, Steal};
use cilkm_spa::{SpaMapBox, ViewPair, VIEWS_PER_MAP};

fn pair(tag: usize) -> ViewPair {
    ViewPair {
        view: (0x10_0000 + tag * 16) as *mut u8,
        monoid: 0x8000 as *const u8,
    }
}

fn bench_deque(c: &mut Criterion) {
    c.bench_function("deque/push-pop", |b| {
        let (owner, _stealer) = deque();
        b.iter(|| {
            owner.push(0x10 as *mut ());
            std::hint::black_box(owner.pop())
        });
    });

    c.bench_function("deque/push-steal", |b| {
        let (owner, stealer) = deque();
        b.iter(|| {
            owner.push(0x10 as *mut ());
            loop {
                match stealer.steal() {
                    Steal::Success(p) => break std::hint::black_box(p),
                    _ => continue,
                }
            }
        });
    });
}

fn bench_spa_map(c: &mut Criterion) {
    c.bench_function("spa/insert-remove", |b| {
        let map = SpaMapBox::new();
        let m = map.as_ref();
        b.iter(|| {
            m.insert(13, pair(1));
            std::hint::black_box(m.remove(13))
        });
    });

    c.bench_function("spa/get-hit", |b| {
        let map = SpaMapBox::new();
        let m = map.as_ref();
        m.insert(13, pair(1));
        b.iter(|| std::hint::black_box(m.get(13)));
        m.clear_all();
    });

    c.bench_function("spa/drain-16-of-248", |b| {
        let map = SpaMapBox::new();
        let m = map.as_ref();
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                for i in 0..16 {
                    m.insert(i * 15 % VIEWS_PER_MAP, pair(i));
                }
                let t0 = Instant::now();
                m.drain(|_, p| {
                    std::hint::black_box(p);
                });
                total += t0.elapsed();
            }
            total
        });
    });
}

fn bench_hypermap(c: &mut Criterion) {
    c.bench_function("hypermap/get-hit-16", |b| {
        let mut m = HyperMap::new();
        for i in 0..16u64 {
            m.insert(0x7000_0000 + i * 64, i as u32, pair(i as usize));
        }
        b.iter(|| std::hint::black_box(m.get(0x7000_0000 + 5 * 64)));
    });

    c.bench_function("hypermap/insert-1024-with-expansion", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let mut m = HyperMap::new();
                let t0 = Instant::now();
                for i in 0..1024u64 {
                    m.insert(0x7000_0000 + i * 64, i as u32, pair(i as usize));
                }
                total += t0.elapsed();
                std::hint::black_box(&m);
            }
            total
        });
    });
}

fn bench_bag(c: &mut Criterion) {
    c.bench_function("bag/insert", |b| {
        b.iter_custom(|iters| {
            let mut bag = Bag::new();
            let t0 = Instant::now();
            for i in 0..iters {
                bag.insert(i as u32);
            }
            t0.elapsed()
        });
    });

    c.bench_function("bag/union-1024+1024", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let mut a = Bag::new();
                let mut bb = Bag::new();
                for i in 0..1024u32 {
                    a.insert(i);
                    bb.insert(i + 2048);
                }
                let t0 = Instant::now();
                a.union(bb);
                total += t0.elapsed();
                std::hint::black_box(a.len());
            }
            total
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_deque, bench_spa_map, bench_hypermap, bench_bag
}
criterion_main!(benches);
