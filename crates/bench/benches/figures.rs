//! `cargo bench` entry point that regenerates *every* table and figure of
//! the paper at a reduced scale, printing the same rows the paper reports
//! and writing CSVs under `bench_out/`.
//!
//! Full-scale runs use the dedicated binaries (`cargo run --release -p
//! cilkm-bench --bin figN`); this harness exists so `cargo bench
//! --workspace` exercises the complete evaluation end to end.
//!
//! Env knobs: CILKM_BENCH_SCALE (default here 4096 — roughly 0.25 M
//! lookups per point), CILKM_BENCH_WORKERS (default here 8),
//! CILKM_GRAPH_SCALE (default 500).

use cilkm_bench::figures::{self, FigureOpts};

fn main() {
    // `cargo bench` passes --bench (and test filters); nothing to parse.
    let opts = FigureOpts {
        scale: cilkm_bench::env_scale(4096.0),
        workers: cilkm_bench::env_workers(8),
    };
    println!(
        "== cilkm figures (scale divisor {}, {} workers) ==\n",
        opts.scale, opts.workers
    );

    println!("--- Figure 1 ---");
    let f1 = figures::fig1(opts);
    assert_eq!(f1.len(), 4);

    println!("--- Figure 5(a) serial ---");
    figures::fig5(opts, 1);
    println!("--- Figure 5(b) parallel ---");
    figures::fig5(opts, opts.workers);

    println!("--- Figure 6 ---");
    figures::fig6(opts);

    println!("--- Figures 7 & 8 ---");
    let f7 = figures::fig7(opts);
    figures::fig8(&f7);

    println!("--- Figure 9 ---");
    figures::fig9(opts);

    println!("--- Figure 10 ---");
    figures::fig10(opts);

    println!("All figures regenerated; CSVs in bench_out/.");
}
