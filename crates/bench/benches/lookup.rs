//! Criterion microbenchmarks of the single-operation costs behind
//! Figure 1: one reducer update per iteration under each mechanism, plus
//! the L1 and locking baselines.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use cilkm_core::library::SumMonoid;
use cilkm_core::{Backend, Reducer, ReducerPool};
use cilkm_runtime::sync::SpinLock;

fn reducer_lookup(c: &mut Criterion, name: &str, backend: Backend) {
    let pool = ReducerPool::new(1, backend);
    let reducers: Vec<Reducer<SumMonoid<u64>>> = (0..4)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    c.bench_function(name, |b| {
        b.iter_custom(|iters| {
            // Measure inside the region so updates take the worker fast
            // path; the region entry cost amortizes over `iters`.
            pool.run(|| {
                let t0 = Instant::now();
                for i in 0..iters {
                    reducers[(i & 3) as usize].add(1);
                }
                t0.elapsed()
            })
        })
    });
}

fn bench_lookups(c: &mut Criterion) {
    reducer_lookup(c, "lookup/memory-mapped", Backend::Mmap);
    reducer_lookup(c, "lookup/hypermap", Backend::Hypermap);

    c.bench_function("lookup/l1-baseline", |b| {
        let cells: Vec<std::cell::UnsafeCell<u64>> =
            (0..4).map(|_| std::cell::UnsafeCell::new(0)).collect();
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for i in 0..iters {
                unsafe {
                    let p = cells[(i & 3) as usize].get();
                    std::ptr::write_volatile(p, std::ptr::read_volatile(p) + 1);
                }
            }
            t0.elapsed()
        })
    });

    c.bench_function("lookup/locking", |b| {
        let locks: Vec<SpinLock<u64>> = (0..4).map(|_| SpinLock::new(0)).collect();
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for i in 0..iters {
                *locks[(i & 3) as usize].lock() += 1;
            }
            t0.elapsed()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lookups
}
criterion_main!(benches);
