//! Criterion microbenchmarks of the single-operation costs behind
//! Figure 1: one reducer update per iteration under each mechanism, plus
//! the L1 and locking baselines.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use cilkm_core::library::SumMonoid;
use cilkm_core::{Backend, Reducer, ReducerPool};
use cilkm_runtime::sync::SpinLock;

fn reducer_lookup(c: &mut Criterion, name: &str, backend: Backend) {
    let pool = ReducerPool::new(1, backend);
    let reducers: Vec<Reducer<SumMonoid<u64>>> = (0..4)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    c.bench_function(name, |b| {
        b.iter_custom(|iters| {
            // Measure inside the region so updates take the worker fast
            // path; the region entry cost amortizes over `iters`.
            pool.run(|| {
                let t0 = Instant::now();
                for i in 0..iters {
                    reducers[(i & 3) as usize].add(1);
                }
                t0.elapsed()
            })
        })
    });
}

/// Repeated access to one reducer: the pattern a typical reduction loop
/// produces, and the one the single-entry last-lookup cache serves.
fn repeated_lookup(c: &mut Criterion, name: &str, backend: Backend) {
    let pool = ReducerPool::new(1, backend);
    let reducer: Reducer<SumMonoid<u64>> = Reducer::new(&pool, SumMonoid::new(), 0);
    c.bench_function(name, |b| {
        b.iter_custom(|iters| {
            pool.run(|| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    reducer.add(1);
                }
                t0.elapsed()
            })
        })
    });
}

/// Strict alternation between two reducers: defeats the single-entry
/// cache on every access, so this measures the cache's overhead when it
/// never hits (the full two-load path plus one failed compare).
fn alternating_lookup(c: &mut Criterion, name: &str, backend: Backend) {
    let pool = ReducerPool::new(1, backend);
    let reducers: Vec<Reducer<SumMonoid<u64>>> = (0..2)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    c.bench_function(name, |b| {
        b.iter_custom(|iters| {
            pool.run(|| {
                let t0 = Instant::now();
                for i in 0..iters {
                    reducers[(i & 1) as usize].add(1);
                }
                t0.elapsed()
            })
        })
    });
}

/// First access after a steal: every timed update misses and pays lazy
/// identity-view creation plus insertion. Between timed batches the views
/// are folded back (untimed), so each reducer's next access misses again
/// — the same state a thief's fresh context is in.
fn first_miss_lookup(c: &mut Criterion, name: &str, backend: Backend) {
    const BATCH: u64 = 64;
    let pool = ReducerPool::new(1, backend);
    let reducers: Vec<Reducer<SumMonoid<u64>>> = (0..BATCH)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    c.bench_function(name, |b| {
        b.iter_custom(|iters| {
            pool.run(|| {
                let mut total = Duration::ZERO;
                let rounds = iters.div_ceil(BATCH);
                for _ in 0..rounds {
                    let t0 = Instant::now();
                    for r in reducers.iter() {
                        r.add(1);
                    }
                    total += t0.elapsed();
                    // Untimed: fold the context views back into leftmost
                    // storage so the next round misses again.
                    for r in reducers.iter() {
                        r.read(|_| ());
                    }
                }
                // Scale to the requested iteration count.
                total.mul_f64(iters as f64 / (rounds * BATCH) as f64)
            })
        })
    });
}

fn bench_lookups(c: &mut Criterion) {
    reducer_lookup(c, "lookup/memory-mapped", Backend::Mmap);
    reducer_lookup(c, "lookup/hypermap", Backend::Hypermap);

    repeated_lookup(c, "lookup/repeated/memory-mapped", Backend::Mmap);
    repeated_lookup(c, "lookup/repeated/hypermap", Backend::Hypermap);
    alternating_lookup(c, "lookup/alternating/memory-mapped", Backend::Mmap);
    alternating_lookup(c, "lookup/alternating/hypermap", Backend::Hypermap);
    first_miss_lookup(c, "lookup/first-miss/memory-mapped", Backend::Mmap);
    first_miss_lookup(c, "lookup/first-miss/hypermap", Backend::Hypermap);

    c.bench_function("lookup/l1-baseline", |b| {
        let cells: Vec<std::cell::UnsafeCell<u64>> =
            (0..4).map(|_| std::cell::UnsafeCell::new(0)).collect();
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for i in 0..iters {
                // SAFETY: the cells are only touched from this bench
                // thread; the pointer comes from a live UnsafeCell.
                unsafe {
                    let p = cells[(i & 3) as usize].get();
                    std::ptr::write_volatile(p, std::ptr::read_volatile(p) + 1);
                }
            }
            t0.elapsed()
        })
    });

    c.bench_function("lookup/locking", |b| {
        let locks: Vec<SpinLock<u64>> = (0..4).map(|_| SpinLock::new(0)).collect();
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for i in 0..iters {
                *locks[(i & 3) as usize].lock() += 1;
            }
            t0.elapsed()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lookups
}
criterion_main!(benches);
