//! Instrumentation for the paper's overhead studies.
//!
//! The evaluation (§8) decomposes the **reduce overhead** — overhead
//! incurred only during parallel execution — into four categories
//! (Figure 8):
//!
//! * **view creation** — building identity views lazily on first access
//!   after a steal;
//! * **view insertion** — recording a new view in the context's map
//!   (hash-table insert for hypermaps, one private-SPA-slot write plus a
//!   log append for memory-mapped reducers);
//! * **view transferal** — publishing a terminating context's views
//!   (pointer switch for hypermaps, private→public pointer copy for
//!   memory-mapped reducers);
//! * **hypermerge** — sequencing one view set against another and running
//!   the monoid reduce operations.
//!
//! All four live on steal paths (cold), so they carry nanosecond timers
//! as well as counts. Since the observability PR the timers are
//! [`Histogram`]s (one sample per operation, log2 ns buckets), so each
//! category is a latency *distribution*; the old nanosecond totals are
//! the histogram sums and still come out of [`Instrument::snapshot`]
//! unchanged. The lookup counter is on the hot path; it is a plain
//! per-worker `Cell` increment, flushed into the shared totals at
//! view-transferal/collect time (and on the discard path after a panic),
//! so it costs the same negligible constant under both backends.

use cilkm_obs::metrics::{
    Counter, FineHistogram, FineHistogramSnapshot, Histogram, HistogramSnapshot,
};
use cilkm_obs::profile::{self, Burden};

/// Whether hot-path (per-lookup) counting is compiled in. The cold,
/// steal-path counters above are always live — they are off the critical
/// path — but the per-lookup increment sits inside the two-load fast path
/// that Figure 1 measures, so release builds compile it out unless the
/// `instrument` feature is enabled (the bench harness enables it; debug
/// builds keep it so counter-asserting tests work under `cargo test`).
pub(crate) const COUNT_LOOKUPS: bool = cfg!(any(debug_assertions, feature = "instrument"));

/// Shared (per-domain) instrumentation totals, on the unified
/// `cilkm-obs` metric primitives: counts are [`Counter`]s, the four §8
/// overhead categories are [`Histogram`]s of per-operation latencies.
#[derive(Default)]
pub struct Instrument {
    /// Reducer lookups (hot-path counter, flushed from workers).
    pub lookups: Counter,
    /// Identity views created.
    pub view_creations: Counter,
    /// Per-creation latency; `.sum` is the Figure 8 view-creation total.
    pub view_creation_ns: Histogram,
    /// Views inserted into a context map.
    pub view_insertions: Counter,
    /// Per-insertion latency; `.sum` is the Figure 8 insertion total.
    pub view_insertion_ns: Histogram,
    /// View transferal operations (detaches with at least the empty set).
    pub transferals: Counter,
    /// Views transferred (copied *or* exchanged) between private and
    /// public maps.
    pub transferal_views: Counter,
    /// Views moved by per-pair copying — the §7 copy path. The exchange
    /// optimization exists to shrink this without shrinking
    /// [`Instrument::transferal_views`].
    pub transferal_copied_views: Counter,
    /// Whole pages handed off by descriptor exchange instead of copying
    /// (each carries its `nvalid` views for one page-table swap).
    pub transferal_exchanged_pages: Counter,
    /// Per-transferal latency (detach and attach each contribute one
    /// sample); `.sum` is the Figure 8 transferal total.
    pub transferal_ns: Histogram,
    /// Per-transferal **wall-clock** latency at sub-log2 resolution.
    /// Deliberately a different clock from [`Instrument::transferal_ns`]:
    /// the coarse histogram keeps thread CPU time (its sum must stay the
    /// Figure 8 total, and CPU time is robust to preemption), but CPU
    /// time cannot see the time a transferal spends *waiting* — which is
    /// exactly where the contended tail lives — so the tail-analysis
    /// histogram records elapsed wall time instead.
    pub transferal_fine_ns: FineHistogram,
    /// Hypermerge operations.
    pub merges: Counter,
    /// View pairs reduced by hypermerges.
    pub merge_pairs: Counter,
    /// Per-hypermerge latency (including monoid operations); `.sum` is
    /// the Figure 8 hypermerge total.
    pub merge_ns: Histogram,
    /// SPA-map log overflows observed (memory-mapped backend only).
    pub log_overflows: Counter,
    /// Detached views handed to per-slot pending-merge lists (the
    /// lock-free steal-return handoff, DESIGN.md §13).
    pub pending_views: Counter,
    /// Per-batch latency of pending-merge drains (owner-touch or
    /// idle-worker), wall clock: this is merge work that used to sit on
    /// the steal/join critical path and now runs off it.
    pub drain_ns: Histogram,
}

impl Instrument {
    /// Fresh zeroed instrumentation.
    pub fn new() -> Instrument {
        Instrument::default()
    }

    /// Atomically reads all counters (histogram fields read as their
    /// sample sums, preserving the pre-histogram totals format).
    pub fn snapshot(&self) -> InstrumentSnapshot {
        InstrumentSnapshot {
            lookups: self.lookups.get(),
            view_creations: self.view_creations.get(),
            view_creation_ns: self.view_creation_ns.snapshot().sum,
            view_insertions: self.view_insertions.get(),
            view_insertion_ns: self.view_insertion_ns.snapshot().sum,
            transferals: self.transferals.get(),
            transferal_views: self.transferal_views.get(),
            transferal_copied_views: self.transferal_copied_views.get(),
            transferal_exchanged_pages: self.transferal_exchanged_pages.get(),
            transferal_ns: self.transferal_ns.snapshot().sum,
            merges: self.merges.get(),
            merge_pairs: self.merge_pairs.get(),
            merge_ns: self.merge_ns.snapshot().sum,
            log_overflows: self.log_overflows.get(),
        }
    }

    /// The four overhead categories as full latency distributions.
    pub fn histograms(&self) -> ReduceHistograms {
        ReduceHistograms {
            view_creation: self.view_creation_ns.snapshot(),
            view_insertion: self.view_insertion_ns.snapshot(),
            transferal: self.transferal_ns.snapshot(),
            transferal_fine: self.transferal_fine_ns.snapshot(),
            hypermerge: self.merge_ns.snapshot(),
        }
    }

    /// Records one hypermerge sample (thread CPU time elapsed since
    /// `start_ns`, a [`thread_time_ns`] reading) and charges it to the
    /// online profiler. Hypermerges run while the owner's strand context
    /// is paused at the sync, so the charge lands only in the session's
    /// burden breakdown — the merge time itself reaches the burdened
    /// span through the runtime's sync fold, never double-counted.
    pub(crate) fn add_merge_ns(hist: &Histogram, start_ns: u64) {
        let ns = thread_time_ns().saturating_sub(start_ns);
        hist.record(ns);
        profile::charge(Burden::Hypermerge, ns);
    }

    /// Starts a transferal timing window (both clocks).
    pub(crate) fn transferal_timer() -> TransferalTimer {
        TransferalTimer {
            cpu0: thread_time_ns(),
            wall0: std::time::Instant::now(),
        }
    }

    /// Ends a transferal window: one CPU-time sample into the coarse
    /// Figure-8 histogram, one wall-clock sample into the fine
    /// tail-analysis histogram, and one wall-clock charge to the online
    /// profiler (transferal happens inside the terminating strand, so
    /// the charge debits that strand's unburdened span — the span the
    /// program would have with free reducers).
    pub(crate) fn finish_transferal(&self, t: TransferalTimer) {
        self.finish_transferal_split(t, 0);
    }

    /// Like [`Instrument::finish_transferal`], but attributes `exchange_ns`
    /// of the wall-clock window to [`Burden::TransferalExchange`] (the
    /// page-swap slice — batched palloc plus scattered pmap) and only the
    /// remainder to [`Burden::Transferal`]. The two charges sum to the
    /// whole window, so total burden is unchanged by the split.
    pub(crate) fn finish_transferal_split(&self, t: TransferalTimer, exchange_ns: u64) {
        self.transferal_ns
            .record(thread_time_ns().saturating_sub(t.cpu0));
        let wall_ns = t.wall0.elapsed().as_nanos() as u64;
        self.transferal_fine_ns.record(wall_ns);
        let exchange_ns = exchange_ns.min(wall_ns);
        profile::charge(Burden::Transferal, wall_ns - exchange_ns);
        profile::charge(Burden::TransferalExchange, exchange_ns);
    }

    /// Timer for the *short* per-view windows (creation, insertion):
    /// monotonic wall time (vDSO, ~20 ns — a thread-CPU-time syscall
    /// would cost more than the operation being measured), with each
    /// sample capped so that a preemption landing inside the window on an
    /// oversubscribed host cannot charge a whole scheduling quantum to a
    /// sub-microsecond operation. The same capped sample is charged to
    /// the online profiler under `kind`.
    pub(crate) fn add_short_ns(hist: &Histogram, since: std::time::Instant, kind: Burden) {
        const CAP_NS: u64 = 10_000;
        let ns = (since.elapsed().as_nanos() as u64).min(CAP_NS);
        hist.record(ns);
        profile::charge(kind, ns);
    }
}

/// In-flight transferal timing window: captures both clocks at the
/// start so [`Instrument::finish_transferal`] can feed the coarse
/// (CPU-time) and fine (wall-clock) histograms from one window.
pub(crate) struct TransferalTimer {
    cpu0: u64,
    wall0: std::time::Instant,
}

/// Per-thread CPU time in nanoseconds.
///
/// The Figure 7/8 timers use *thread CPU time*, not wall time: the
/// "16-processor" experiments run oversubscribed on small hosts, and a
/// wall-clock window spanning a preemption would charge a whole
/// scheduling quantum (milliseconds) to a microsecond-scale operation.
/// The paper's testbed had 16 real cores, where the two are equivalent.
#[cfg(all(unix, not(miri)))]
pub fn thread_time_ns() -> u64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // Safety: plain syscall writing the timespec out-parameter.
    unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// Per-thread CPU time (non-unix and Miri fallback: monotonic wall
/// time — Miri has no thread-CPU-time clock shim).
#[cfg(any(not(unix), miri))]
pub fn thread_time_ns() -> u64 {
    use std::time::Instant;
    static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A point-in-time copy of the instrumentation counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InstrumentSnapshot {
    /// Reducer lookups performed.
    pub lookups: u64,
    /// Identity views created.
    pub view_creations: u64,
    /// Nanoseconds creating views.
    pub view_creation_ns: u64,
    /// Views inserted into context maps.
    pub view_insertions: u64,
    /// Nanoseconds inserting views.
    pub view_insertion_ns: u64,
    /// View transferal operations.
    pub transferals: u64,
    /// Views transferred (copied or exchanged).
    pub transferal_views: u64,
    /// Views moved by per-pair copying (the §7 copy path only).
    pub transferal_copied_views: u64,
    /// Whole pages handed off by descriptor exchange.
    pub transferal_exchanged_pages: u64,
    /// Nanoseconds in view transferal.
    pub transferal_ns: u64,
    /// Hypermerge operations.
    pub merges: u64,
    /// View pairs reduced.
    pub merge_pairs: u64,
    /// Nanoseconds in hypermerges.
    pub merge_ns: u64,
    /// SPA-map log overflows.
    pub log_overflows: u64,
}

impl InstrumentSnapshot {
    /// Counter-wise difference `self - earlier`.
    pub fn since(&self, earlier: &InstrumentSnapshot) -> InstrumentSnapshot {
        InstrumentSnapshot {
            lookups: self.lookups - earlier.lookups,
            view_creations: self.view_creations - earlier.view_creations,
            view_creation_ns: self.view_creation_ns - earlier.view_creation_ns,
            view_insertions: self.view_insertions - earlier.view_insertions,
            view_insertion_ns: self.view_insertion_ns - earlier.view_insertion_ns,
            transferals: self.transferals - earlier.transferals,
            transferal_views: self.transferal_views - earlier.transferal_views,
            transferal_copied_views: self.transferal_copied_views - earlier.transferal_copied_views,
            transferal_exchanged_pages: self.transferal_exchanged_pages
                - earlier.transferal_exchanged_pages,
            transferal_ns: self.transferal_ns - earlier.transferal_ns,
            merges: self.merges - earlier.merges,
            merge_pairs: self.merge_pairs - earlier.merge_pairs,
            merge_ns: self.merge_ns - earlier.merge_ns,
            log_overflows: self.log_overflows - earlier.log_overflows,
        }
    }

    /// The Figure 7/8 quantity: total reduce overhead in nanoseconds
    /// (view creation + insertion + transferal + hypermerge).
    pub fn reduce_overhead_ns(&self) -> u64 {
        self.view_creation_ns + self.view_insertion_ns + self.transferal_ns + self.merge_ns
    }

    /// The Figure 8 per-category breakdown.
    pub fn breakdown(&self) -> ReduceBreakdown {
        ReduceBreakdown {
            view_creation_ns: self.view_creation_ns,
            view_insertion_ns: self.view_insertion_ns,
            transferal_ns: self.transferal_ns,
            hypermerge_ns: self.merge_ns,
        }
    }
}

/// The four Figure 8 categories, in nanoseconds.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ReduceBreakdown {
    /// Creating identity views.
    pub view_creation_ns: u64,
    /// Inserting views into context maps.
    pub view_insertion_ns: u64,
    /// View transferal.
    pub transferal_ns: u64,
    /// Hypermerge (including monoid reduce operations).
    pub hypermerge_ns: u64,
}

/// The four Figure 8 categories as per-operation latency distributions
/// (each snapshot's `.sum` equals the matching [`ReduceBreakdown`]
/// total; `.count` is the operation count).
#[derive(Copy, Clone, Debug, Default)]
pub struct ReduceHistograms {
    /// Identity-view creation latencies.
    pub view_creation: HistogramSnapshot,
    /// Context-map insertion latencies.
    pub view_insertion: HistogramSnapshot,
    /// View-transferal (detach/attach) latencies.
    pub transferal: HistogramSnapshot,
    /// View-transferal latencies again, but wall-clock and at sub-log2
    /// resolution (see [`Instrument::transferal_fine_ns`] for why the
    /// clocks differ): the histogram the contended-transferal gate and
    /// the bimodality analysis read.
    pub transferal_fine: FineHistogramSnapshot,
    /// Hypermerge latencies (including monoid operations).
    pub hypermerge: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_time_is_monotonic_and_advances_under_work() {
        let a = thread_time_ns();
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i).rotate_left(3);
        }
        std::hint::black_box(x);
        let b = thread_time_ns();
        assert!(b >= a);
        assert!(b - a > 10_000, "2M ops should cost >10us of CPU time");
    }

    #[test]
    fn snapshot_since_and_totals() {
        let ins = Instrument::new();
        ins.lookups.add(100);
        ins.view_creation_ns.record(10);
        ins.view_insertion_ns.record(20);
        ins.transferal_ns.record(30);
        ins.merge_ns.record(40);
        let a = ins.snapshot();
        assert_eq!(a.reduce_overhead_ns(), 100);
        ins.lookups.add(50);
        let b = ins.snapshot();
        assert_eq!(b.since(&a).lookups, 50);
        let bd = a.breakdown();
        assert_eq!(bd.view_creation_ns, 10);
        assert_eq!(bd.hypermerge_ns, 40);
    }

    #[test]
    fn histogram_sums_are_the_breakdown_totals() {
        let ins = Instrument::new();
        ins.view_creation_ns.record(100);
        ins.view_creation_ns.record(900);
        ins.merge_ns.record(5_000);
        let h = ins.histograms();
        assert_eq!(h.view_creation.count, 2);
        assert_eq!(h.view_creation.sum, 1_000);
        assert_eq!(h.hypermerge.count, 1);
        let snap = ins.snapshot();
        assert_eq!(snap.view_creation_ns, h.view_creation.sum);
        assert_eq!(snap.merge_ns, h.hypermerge.sum);
        assert_eq!(snap.reduce_overhead_ns(), 6_000);
    }
}
