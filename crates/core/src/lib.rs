//! # cilkm-core — reducer hyperobjects, two ways
//!
//! This crate implements the subject of *Memory-Mapping Support for
//! Reducer Hyperobjects* (Lee, Shafi, Leiserson — SPAA 2012): the reducer
//! linguistic mechanism of Cilk++/Cilk Plus, with **both** runtime
//! strategies the paper compares, running over the same scheduler
//! (`cilkm-runtime`):
//!
//! * [`Backend::Hypermap`] — the Cilk Plus baseline (§3): each execution
//!   context owns a hash table mapping reducers to local views; every
//!   access is a hash lookup; view transferal switches map pointers;
//!   hypermerge walks one table probing the other.
//! * [`Backend::Mmap`] — the paper's contribution (§4–§7): each worker
//!   owns a TLMM region (simulated by `cilkm-tlmm`) holding *private SPA
//!   maps* of (view, monoid) pointer pairs; a lookup is a short
//!   straight-line load/load/branch sequence; view transferal copies
//!   pointers into *public SPA maps* (the copying strategy of §7),
//!   zeroing the private maps; hypermerge sweeps the smaller view set
//!   into the larger.
//!
//! ## Reducer semantics
//!
//! A reducer is defined by an algebraic monoid `(T, ⊗, e)` — the
//! [`Monoid`] trait. Parallel branches see coordinated local views, and
//! as long as `⊗` is associative the final value equals the serial
//! execution's, regardless of scheduling. The [`library`] module provides
//! the standard monoids the paper's benchmarks use (addition, min, max,
//! logical and/or, list and string append) plus a holder.
//!
//! ## Quick start
//!
//! ```
//! use cilkm_core::{Backend, ReducerPool, library::SumMonoid, Reducer};
//! use cilkm_runtime::parallel_for;
//!
//! let pool = ReducerPool::new(4, Backend::Mmap);
//! let sum = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
//! pool.run(|| {
//!     parallel_for(0..1000, 16, &|r| {
//!         for i in r {
//!             sum.update(|v| *v += i as u64);
//!         }
//!     });
//! });
//! assert_eq!(sum.get_cloned(), 499_500);
//! ```

#![deny(missing_docs)]

pub mod hypermap;
pub mod instrument;
pub mod library;
pub mod mmap;
pub mod monoid;
pub mod reducer;

mod domain;
mod lockfree;
mod msync;
mod reclaim;

#[cfg(all(test, feature = "model"))]
mod model_tests;

pub use domain::{Backend, DomainInner, ReducerPool};
pub use instrument::{InstrumentSnapshot, ReduceBreakdown};
pub use monoid::Monoid;
pub use reducer::Reducer;
