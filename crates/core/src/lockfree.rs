//! Lock-free view-lifecycle structures (DESIGN.md §13): the per-slot
//! leftmost registry with pending-merge lists, and the public SPA-map
//! free-list.
//!
//! PR 3's tracing showed the old `Mutex`-guarded registry and map pool
//! serializing every steal return and hypermerge behind the domain
//! locks. This module replaces them:
//!
//! * [`SlotRegistry`] — a chunked array of [`SlotCell`]s, one per
//!   reducer slot (`tlmm_addr`). Registration CAS-publishes the
//!   leftmost view pointer; region-end folds *push* detached views
//!   onto a per-slot Treiber **pending list** and return immediately
//!   (the returning thief keeps stealing); the fold into leftmost
//!   storage happens later — on the owner's next serial touch or from
//!   the idle-worker drain hook — strictly in push (= serial) order.
//!   Slot numbers are recycled through a tag-stamped lock-free
//!   free-list (cells are never deallocated before domain teardown, so
//!   an ABA tag is all the protection popping needs).
//! * [`MapPool`] — a Treiber free-list of boxed public SPA maps. Nodes
//!   unlinked by `pop` may still be under a racing popper's feet, so
//!   they are handed to the [`Collector`](crate::reclaim::Collector)
//!   and freed once every pinned reader has moved on.
//! * [`SerialBorrow`] — the per-reducer serial-exclusion word, moved
//!   *into* the domain-owned cell (it used to live in the
//!   `ReducerInner`, which an idle drainer could outlive). Three
//!   states: free, user (serial-path reducer access; a second user
//!   panics — that is a Cilk serial-semantics violation), drainer
//!   (internal; users spin until it passes, drainers skip).
//!
//! Everything here goes through the `msync` atomic facade, so the
//! protocols run under the model checker's weak-memory exploration
//! (`--features model`).

use crate::msync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use cilkm_spa::SpaMapBox;

use crate::domain::Slot;
use crate::monoid::MonoidInstance;
use crate::reclaim::Collector;

/// Slots per chunk (lazily allocated; pointer-stable once published).
const CHUNK: usize = 256;
/// Chunk directory size: `CHUNK * MAX_CHUNKS` = 65 536 slots, far above
/// the "reasonable number of reducers" the paper's footnote 9 assumes.
const MAX_CHUNKS: usize = 256;
/// Free-list terminator in the `u32` slot-index space.
const NONE: u32 = u32::MAX;

/// Serial word: nobody is at a serial point for this reducer.
const SERIAL_FREE: u32 = 0;
/// Serial word: a user serial-path access (update outside a region,
/// read/take/set/into_inner, drop) is in progress.
const SERIAL_USER: u32 = 1;
/// Serial word: an idle-worker drain is folding this slot's pending
/// views. Users wait it out; it is short and lock-free.
const SERIAL_DRAIN: u32 = 2;

/// One node of a per-slot pending-merge list: a detached view awaiting
/// its fold into leftmost storage.
pub(crate) struct PendingNode {
    /// Written by the pusher before the publishing CAS and read only by
    /// the drainer that took the whole list with a `swap`, so a plain
    /// field suffices (the list head carries the happens-before).
    next: *mut PendingNode,
    view: *mut u8,
}

/// Per-slot atomic cell: the leftmost registry entry, the pending-merge
/// list head, the serial-exclusion word, and the free-list link.
pub(crate) struct SlotCell {
    /// Leftmost view pointer; null while the slot is unregistered.
    view: AtomicPtr<u8>,
    /// Erased `MonoidInstance` pointer (valid while `view` is non-null:
    /// the owning reducer cannot finish dropping while a drainer holds
    /// the serial word).
    monoid: AtomicPtr<u8>,
    /// Tri-state serial-exclusion word (see module docs).
    serial: AtomicU32,
    /// Pending-merge Treiber list head.
    pending: AtomicPtr<PendingNode>,
    /// Next slot index when this slot sits on the free-list.
    next_free: AtomicU32,
}

impl SlotCell {
    const fn new() -> SlotCell {
        SlotCell {
            view: AtomicPtr::new(std::ptr::null_mut()),
            monoid: AtomicPtr::new(std::ptr::null_mut()),
            serial: AtomicU32::new(SERIAL_FREE),
            pending: AtomicPtr::new(std::ptr::null_mut()),
            next_free: AtomicU32::new(NONE),
        }
    }
}

struct CellChunk {
    cells: [SlotCell; CHUNK],
}

/// The lock-free leftmost registry + slot allocator (see module docs).
pub(crate) struct SlotRegistry {
    chunks: [AtomicPtr<CellChunk>; MAX_CHUNKS],
    /// Tagged free-list head: `(tag << 32) | slot_index`. The tag is
    /// bumped on every successful push *and* pop, so a pop's CAS cannot
    /// succeed across an interleaved pop/push pair that resurrected the
    /// same head index with a different successor (ABA).
    free_head: AtomicU64,
    /// Bump allocator for never-used slots.
    next_fresh: AtomicU32,
    /// Global count of views sitting on pending lists — the cheap
    /// "anything to drain?" check for idle workers, exported as the
    /// `pending_depth` metric.
    pending_total: AtomicUsize,
}

// SAFETY: all fields are atomics or arrays of atomics; the chunk
// pointers are published once via CAS and only deallocated by `Drop`
// (`&mut self`), and the view/monoid/pending raw pointers they guard
// are handed across threads only through the acquire/release protocols
// documented on each method.
unsafe impl Send for SlotRegistry {}
// SAFETY: as above — all shared mutation goes through the atomics.
unsafe impl Sync for SlotRegistry {}

impl SlotRegistry {
    pub(crate) const fn new() -> SlotRegistry {
        SlotRegistry {
            chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_CHUNKS],
            free_head: AtomicU64::new(NONE as u64),
            next_fresh: AtomicU32::new(0),
            pending_total: AtomicUsize::new(0),
        }
    }

    /// Allocates a slot: recycles from the free-list, else takes a
    /// fresh index (allocating its chunk on first use).
    pub(crate) fn alloc(&self) -> Slot {
        if let Some(s) = self.pop_free() {
            return s;
        }
        let s = self.next_fresh.fetch_add(1, Ordering::Relaxed);
        assert!(
            (s as usize) < CHUNK * MAX_CHUNKS,
            "slot space exhausted ({} slots)",
            CHUNK * MAX_CHUNKS
        );
        self.ensure_chunk(s);
        s
    }

    /// Pops the free-list (tag-stamped against ABA; see `free_head`).
    // lint: hot-path
    fn pop_free(&self) -> Option<Slot> {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            let idx = head as u32;
            if idx == NONE {
                return None;
            }
            // A freed slot's chunk always exists, so `cell` is safe.
            let next = self.cell(idx).next_free.load(Ordering::Relaxed);
            let new = bump_tag(head, next);
            match self.free_head.compare_exchange_weak(
                head,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(idx),
                Err(h) => head = h,
            }
        }
    }

    /// Returns a slot to the free-list.
    // lint: hot-path
    pub(crate) fn free(&self, slot: Slot) {
        let cell = self.cell(slot);
        debug_assert!(cell.view.load(Ordering::Relaxed).is_null());
        debug_assert!(cell.pending.load(Ordering::Relaxed).is_null());
        let mut head = self.free_head.load(Ordering::Relaxed);
        loop {
            cell.next_free.store(head as u32, Ordering::Relaxed);
            let new = bump_tag(head, slot);
            match self.free_head.compare_exchange_weak(
                head,
                new,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Publishes chunk `slot / CHUNK`, racing allocators tolerated (the
    /// CAS loser frees its chunk and uses the winner's).
    fn ensure_chunk(&self, slot: Slot) {
        let c = slot as usize / CHUNK;
        if !self.chunks[c].load(Ordering::Acquire).is_null() {
            return;
        }
        let fresh = Box::into_raw(Box::new(CellChunk {
            cells: [const { SlotCell::new() }; CHUNK],
        }));
        if let Err(_won) = self.chunks[c].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: `fresh` never escaped this thread.
            drop(unsafe { Box::from_raw(fresh) });
        }
    }

    /// The cell of an allocated slot. Callers must pass a slot that was
    /// returned by [`SlotRegistry::alloc`] (its chunk then exists).
    pub(crate) fn cell(&self, slot: Slot) -> &SlotCell {
        let c = slot as usize / CHUNK;
        let chunk = self.chunks[c].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null(), "cell() on an unallocated slot {slot}");
        // SAFETY: chunk pointers are published once (ensure_chunk) and
        // stay valid until `Drop` takes `&mut self`, and the index is in
        // bounds by construction.
        unsafe { (*chunk).cells.get_unchecked(slot as usize % CHUNK) }
    }

    /// CAS-publishes the leftmost view + monoid for `slot`. Panics if
    /// the slot is already registered (a lifecycle bug, not a race).
    pub(crate) fn register(&self, slot: Slot, view: *mut u8, monoid: *const u8) {
        let cell = self.cell(slot);
        cell.monoid.store(monoid as *mut u8, Ordering::Relaxed);
        // Release-publish the view *after* the monoid, so any thread
        // that Acquire-loads a non-null view also sees its monoid.
        let r = cell.view.compare_exchange(
            std::ptr::null_mut(),
            view,
            Ordering::Release,
            Ordering::Relaxed,
        );
        assert!(r.is_ok(), "slot {slot} already registered");
    }

    /// Unpublishes `slot`, returning its leftmost view (None if it was
    /// never registered). The caller must have drained pending views.
    pub(crate) fn unregister(&self, slot: Slot) -> Option<*mut u8> {
        let v = self
            .cell(slot)
            .view
            .swap(std::ptr::null_mut(), Ordering::AcqRel);
        if v.is_null() {
            None
        } else {
            Some(v)
        }
    }

    /// The leftmost entry of `slot`: `(view, monoid)` if registered.
    pub(crate) fn entry(&self, slot: Slot) -> Option<(*mut u8, *const u8)> {
        let cell = self.cell(slot);
        let view = cell.view.load(Ordering::Acquire);
        if view.is_null() {
            return None;
        }
        Some((view, cell.monoid.load(Ordering::Relaxed) as *const u8))
    }

    /// Replaces the leftmost view pointer, returning the old one.
    pub(crate) fn swap_view(&self, slot: Slot, new_view: *mut u8) -> *mut u8 {
        let old = self.cell(slot).view.swap(new_view, Ordering::AcqRel);
        assert!(!old.is_null(), "slot {slot} not registered");
        old
    }

    /// Views currently sitting on pending lists (the fast idle check).
    pub(crate) fn pending_total(&self) -> usize {
        self.pending_total.load(Ordering::Relaxed)
    }

    /// Highest slot index ever allocated (scan bound for the drainer).
    pub(crate) fn high_water(&self) -> u32 {
        self.next_fresh.load(Ordering::Relaxed)
    }

    /// Number of registered slots — test aid.
    pub(crate) fn live(&self) -> usize {
        (0..self.high_water())
            .filter(|&s| !self.cell(s).view.load(Ordering::Relaxed).is_null())
            .count()
    }

    /// Pushes a detached `view` onto `slot`'s pending-merge list — the
    /// steal-return half of the handoff: no lock, no fold, the caller
    /// (a returning thief or a region-end collect) continues
    /// immediately.
    ///
    /// # Safety
    ///
    /// `view` must be a live boxed view of the slot's monoid type, and
    /// the slot must be registered (views must not outlive the
    /// reducer).
    pub(crate) unsafe fn push_pending(&self, slot: Slot, view: *mut u8) {
        let cell = self.cell(slot);
        assert!(
            !cell.view.load(Ordering::Acquire).is_null(),
            "views outlive reducer for slot {slot}"
        );
        let node = Box::into_raw(Box::new(PendingNode {
            next: std::ptr::null_mut(),
            view,
        }));
        self.push_pending_node(cell, node);
    }

    /// Region-exit fold attempt: if the slot's serial word is free,
    /// takes it as a drainer, folds any parked views (serially earlier
    /// than `view`) and then `view` itself into the leftmost — no
    /// allocation, no parked node — and returns `true`. If the word is
    /// busy (the owner or another drainer holds it), returns `false`
    /// without touching `view`: the caller parks it with
    /// [`SlotRegistry::push_pending`] instead. Never blocks either way.
    ///
    /// # Safety
    ///
    /// As [`SlotRegistry::push_pending`]: `view` must be a live boxed
    /// view of the slot's monoid, and the slot must be registered.
    // lint: hot-path
    pub(crate) unsafe fn try_fold_root(&self, slot: Slot, view: *mut u8) -> bool {
        let cell = self.cell(slot);
        let Some(_borrow) = SerialBorrow::try_acquire_drain(cell) else {
            return false;
        };
        let left = cell.view.load(Ordering::Acquire);
        assert!(!left.is_null(), "views outlive reducer for slot {slot}");
        // SAFETY: drainer serial word held; slot checked registered.
        unsafe { self.drain_cell(cell) };
        let monoid = cell.monoid.load(Ordering::Relaxed) as *const u8;
        // SAFETY: registered slot ⇒ live erased monoid instance.
        let inst = unsafe { MonoidInstance::from_erased(monoid) };
        // SAFETY: `left` is the live leftmost view and `view` a live
        // detached view of the same monoid (fn contract); the reduce
        // consumes the right operand.
        unsafe { inst.reduce_into(left, view) };
        true
    }

    /// The publishing CAS loop for [`SlotRegistry::push_pending`]
    /// (allocation stays in the caller).
    // lint: hot-path
    fn push_pending_node(&self, cell: &SlotCell, node: *mut PendingNode) {
        let mut head = cell.pending.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS below
            // publishes it.
            unsafe { (*node).next = head };
            match cell.pending.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.pending_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds every pending view of this cell into its leftmost view, in
    /// push (= serial left-to-right) order, until the list stays empty.
    /// Returns the number of views folded.
    ///
    /// # Safety
    ///
    /// The caller must hold the cell's serial word (user or drainer),
    /// and the slot must be registered with a live view and monoid.
    pub(crate) unsafe fn drain_cell(&self, cell: &SlotCell) -> usize {
        let mut folded = 0usize;
        loop {
            let taken = cell.pending.swap(std::ptr::null_mut(), Ordering::Acquire);
            if taken.is_null() {
                break;
            }
            // Reverse the LIFO list: push order is region order is
            // serial order (regions are serialized, and each region
            // contributes at most one final view per slot), so the
            // reversed list folds left-to-right.
            let mut chron: *mut PendingNode = std::ptr::null_mut();
            let mut cur = taken;
            while !cur.is_null() {
                // SAFETY: the swap above transferred exclusive ownership
                // of the whole list to this thread.
                let next = unsafe { (*cur).next };
                // SAFETY: same exclusive ownership as the read above.
                unsafe { (*cur).next = chron };
                chron = cur;
                cur = next;
            }
            let left = cell.view.load(Ordering::Relaxed);
            let monoid = cell.monoid.load(Ordering::Relaxed) as *const u8;
            debug_assert!(!left.is_null() && !monoid.is_null());
            // SAFETY: caller contract — registered slot, live monoid.
            let inst = unsafe { MonoidInstance::from_erased(monoid) };
            while !chron.is_null() {
                // SAFETY: exclusive list ownership as above; each node
                // was allocated by push_pending and is freed exactly
                // once here.
                let node = unsafe { Box::from_raw(chron) };
                chron = node.next;
                // SAFETY: `left` is the live leftmost view and
                // `node.view` a live detached view of the same monoid
                // (push_pending contract); reduce consumes the right.
                unsafe { inst.reduce_into(left, node.view) };
                folded += 1;
            }
        }
        if folded != 0 {
            self.pending_total.fetch_sub(folded, Ordering::Relaxed);
        }
        folded
    }

    /// One idle-worker sweep: for every slot with pending views, try to
    /// take the drainer role and fold them. Never blocks — slots whose
    /// serial word is busy are simply skipped (their holder will drain
    /// them). Returns the number of views folded.
    pub(crate) fn drain_idle(&self) -> usize {
        if self.pending_total() == 0 {
            return 0;
        }
        let mut folded = 0usize;
        for slot in 0..self.high_water() {
            let chunk = self.chunks[slot as usize / CHUNK].load(Ordering::Acquire);
            if chunk.is_null() {
                // Fresh-slot chunks appear in order; nothing past here.
                break;
            }
            // SAFETY: published chunks stay valid until domain teardown.
            let cell = unsafe { (*chunk).cells.get_unchecked(slot as usize % CHUNK) };
            if cell.pending.load(Ordering::Relaxed).is_null() {
                continue;
            }
            let Some(_borrow) = SerialBorrow::try_acquire_drain(cell) else {
                continue;
            };
            // Re-check under the serial word: an unregistered slot's
            // pendings belong to the reducer's Drop (which is spinning
            // on this very word if it is mid-teardown).
            if cell.view.load(Ordering::Acquire).is_null() {
                continue;
            }
            // SAFETY: we hold the drainer serial word and just checked
            // the slot is registered; the owning reducer cannot finish
            // dropping (its Drop needs the user serial word), so view
            // and monoid stay live for the duration.
            folded += unsafe { self.drain_cell(cell) };
        }
        folded
    }
}

impl Drop for SlotRegistry {
    fn drop(&mut self) {
        for c in &mut self.chunks {
            let chunk = *c.get_mut();
            if chunk.is_null() {
                continue;
            }
            // SAFETY: `&mut self` — no concurrent users; each chunk was
            // Box-allocated by ensure_chunk and unpublished here once.
            let mut chunk = unsafe { Box::from_raw(chunk) };
            for cell in &mut chunk.cells {
                // Leaked reducers may leave pending nodes; free the
                // node memory (the views leak with their reducer, as
                // they always did). `get_mut`, not `load`: teardown is
                // exclusive, and a traced atomic op here would panic
                // inside a Drop if the model is already unwinding.
                let mut p = *cell.pending.get_mut();
                while !p.is_null() {
                    // SAFETY: teardown is single-threaded; nodes are
                    // freed exactly once.
                    let node = unsafe { Box::from_raw(p) };
                    p = node.next;
                }
            }
        }
    }
}

/// `(tag+1, idx)` — new head word for the slot free-list.
#[inline]
fn bump_tag(head: u64, idx: u32) -> u64 {
    ((head >> 32).wrapping_add(1) << 32) | idx as u64
}

/// Guard for the per-cell serial word (see module docs).
pub(crate) struct SerialBorrow<'a> {
    word: &'a AtomicU32,
}

impl<'a> SerialBorrow<'a> {
    /// Takes the serial word for a user serial-path access. Spins out a
    /// concurrent drainer (short, lock-free); panics on a second user —
    /// overlapping serial accesses are a program error under the Cilk
    /// serial semantics, exactly as the old `AtomicBool` flag did.
    pub(crate) fn acquire_user(cell: &'a SlotCell) -> SerialBorrow<'a> {
        let word = &cell.serial;
        loop {
            match word.compare_exchange(
                SERIAL_FREE,
                SERIAL_USER,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return SerialBorrow { word },
                Err(SERIAL_DRAIN) => crate::msync::spin_hint(),
                Err(_) => panic!(
                    "concurrent serial access to a reducer \
                     (serial accesses must not overlap)"
                ),
            }
        }
    }

    /// Tries to take the serial word as a drainer; `None` if anyone
    /// (user or another drainer) holds it.
    pub(crate) fn try_acquire_drain(cell: &'a SlotCell) -> Option<SerialBorrow<'a>> {
        cell.serial
            .compare_exchange(
                SERIAL_FREE,
                SERIAL_DRAIN,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .ok()
            .map(|_| SerialBorrow { word: &cell.serial })
    }
}

impl Drop for SerialBorrow<'_> {
    fn drop(&mut self) {
        // Skip the model release while unwinding: if the execution is
        // being torn down (ModelAbort) a traced op here would nest a
        // second abort panic inside this Drop — a double panic; if a
        // test assertion is unwinding, the failure is already recorded
        // and the execution stops anyway. (Same discipline as the
        // checker's own MutexGuard.)
        #[cfg(feature = "model")]
        if std::thread::panicking() {
            return;
        }
        self.word.store(SERIAL_FREE, Ordering::Release);
    }
}

/// A node of the public-map free-list.
struct MapNode {
    /// Written before the publishing CAS, immutable afterwards; racing
    /// poppers read it under the collector's pin.
    next: *mut MapNode,
    /// Taken out by value by the winning popper; the node shell is then
    /// retired. `ManuallyDrop` so freeing the shell never double-drops.
    map: std::mem::ManuallyDrop<SpaMapBox>,
}

/// Destructor for a popped node shell: the map was moved out, only the
/// allocation remains.
unsafe fn free_map_node(p: *mut u8) {
    // SAFETY: by this fn's contract `p` came from `Box::into_raw` in
    // `MapPool::push` and its `map` was taken by the popper.
    let node = unsafe { Box::from_raw(p as *mut MapNode) };
    drop(node);
}

/// Lock-free pool of empty public SPA maps (replaces the old
/// `Mutex<Vec<SpaMapBox>>`): a Treiber stack whose unlinked nodes are
/// reclaimed through the hazard-era [`Collector`].
pub(crate) struct MapPool {
    head: AtomicPtr<MapNode>,
    collector: Collector,
}

// SAFETY: head is atomic; the nodes it reaches are shared only through
// the pin/retire protocol (reclaim.rs), and `SpaMapBox` contents are
// plain heap memory untouched while pooled (same argument the old
// mutex-guarded pool made).
unsafe impl Send for MapPool {}
// SAFETY: as above.
unsafe impl Sync for MapPool {}

impl MapPool {
    pub(crate) const fn new() -> MapPool {
        MapPool {
            head: AtomicPtr::new(std::ptr::null_mut()),
            collector: Collector::new(),
        }
    }

    /// Returns one empty map to the pool.
    pub(crate) fn push(&self, map: SpaMapBox) {
        let node = Box::into_raw(Box::new(MapNode {
            next: std::ptr::null_mut(),
            map: std::mem::ManuallyDrop::new(map),
        }));
        self.push_node(node);
    }

    /// The publishing CAS loop for [`MapPool::push`] (allocation stays
    /// in the caller).
    // lint: hot-path
    fn push_node(&self, node: *mut MapNode) {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is exclusively ours until published.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Off-critical-path reclamation of popped node shells: frees
    /// whatever the hazard-era collector can prove unreachable. Called
    /// from the idle-drain hook so `pop` itself almost never sweeps.
    pub(crate) fn collect(&self) {
        self.collector.collect();
    }

    /// Takes one map, or `None` if the pool is empty.
    // lint: hot-path
    pub(crate) fn pop(&self) -> Option<SpaMapBox> {
        let guard = self.collector.pin();
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            if head.is_null() {
                return None;
            }
            // Sanitizer lifecycle check: flags the dereference below if
            // the node is retired and our pin does not cover its stamp
            // — i.e. exactly the case the SAFETY argument rules out.
            #[cfg(all(feature = "sanitize", not(feature = "model")))]
            cilkm_san::lifecycle::check_access(head as usize, "MapPool::pop");
            // SAFETY: the pin guarantees `head` has not been freed: a
            // node is only freed once its retire stamp is older than
            // every reservation, and a node retired *before* our pin's
            // validated era read cannot be the value this Acquire load
            // returned (the unlink happens-before our load via the
            // SeqCst era chain — see reclaim.rs soundness note). The
            // same argument rules out ABA: this address cannot have
            // been freed and re-pushed while we are pinned.
            let next = unsafe { (*head).next };
            match self
                .head
                .compare_exchange_weak(head, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    // SAFETY: the successful CAS unlinked `head`; we are
                    // its exclusive owner (racing poppers may still read
                    // its `next`, which we do not touch). Raw-pointer
                    // projection so no reference to the shared node is
                    // materialized.
                    let map = unsafe {
                        std::mem::ManuallyDrop::into_inner(std::ptr::read(std::ptr::addr_of!(
                            (*head).map
                        )))
                    };
                    // SAFETY: unlinked above, never retired before, and
                    // valid for free_map_node by construction.
                    unsafe { self.collector.retire(head as *mut u8, free_map_node) };
                    drop(guard);
                    return Some(map);
                }
                Err(h) => head = h,
            }
        }
    }
}

impl Drop for MapPool {
    fn drop(&mut self) {
        let mut head = *self.head.get_mut();
        while !head.is_null() {
            // SAFETY: `&mut self` — no concurrent users; pooled nodes
            // still own their maps, so drop both.
            let mut node = unsafe { Box::from_raw(head) };
            head = node.next;
            // SAFETY: the map was never taken (the node was still
            // linked), so exactly one drop happens here.
            unsafe { std::mem::ManuallyDrop::drop(&mut node.map) };
        }
        // The collector's own Drop frees retired node shells.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_recycle_through_the_tagged_free_list() {
        let r = SlotRegistry::new();
        let a = r.alloc();
        let b = r.alloc();
        assert_ne!(a, b);
        r.free(a);
        assert_eq!(r.alloc(), a, "freed slot must be reused first");
        r.free(b);
        r.free(a);
        // LIFO: last freed pops first.
        assert_eq!(r.alloc(), a);
        assert_eq!(r.alloc(), b);
    }

    #[test]
    fn registry_publishes_and_unpublishes_entries() {
        let r = SlotRegistry::new();
        let s = r.alloc();
        assert!(r.entry(s).is_none());
        let view = Box::into_raw(Box::new(5u64)) as *mut u8;
        r.register(s, view, std::ptr::null());
        assert_eq!(r.live(), 1);
        let (v, _m) = r.entry(s).unwrap();
        assert_eq!(v, view);
        let v = r.unregister(s).unwrap();
        // SAFETY: the view was Box::into_raw'ed above; unregistering
        // returned the sole remaining pointer to it.
        unsafe { drop(Box::from_raw(v as *mut u64)) };
        assert_eq!(r.live(), 0);
        assert!(r.entry(s).is_none());
    }

    #[test]
    fn map_pool_recycles_and_frees_on_drop() {
        let p = MapPool::new();
        assert!(p.pop().is_none());
        p.push(SpaMapBox::default());
        p.push(SpaMapBox::default());
        let a = p.pop().expect("two maps pooled");
        assert!(a.as_ref().is_empty());
        // One map still pooled at drop: MapPool::drop must free it.
        drop(p);
    }

    #[test]
    fn serial_word_spins_out_drainers_and_panics_on_users() {
        let r = SlotRegistry::new();
        let s = r.alloc();
        let cell = r.cell(s);
        let user = SerialBorrow::acquire_user(cell);
        assert!(
            SerialBorrow::try_acquire_drain(cell).is_none(),
            "drainer must not enter while a user holds the word"
        );
        drop(user);
        let drain = SerialBorrow::try_acquire_drain(cell).expect("free word");
        drop(drain);
        let _user = SerialBorrow::acquire_user(cell);
    }

    #[test]
    #[should_panic(expected = "concurrent serial access")]
    fn overlapping_user_borrows_panic() {
        let r = SlotRegistry::new();
        let s = r.alloc();
        let _a = SerialBorrow::acquire_user(r.cell(s));
        let _b = SerialBorrow::acquire_user(r.cell(s));
    }

    #[test]
    fn pending_views_fold_in_push_order() {
        // Non-commutative monoid: order mistakes change the answer.
        struct Concat;
        impl crate::monoid::Monoid for Concat {
            type View = String;
            fn identity(&self) -> String {
                String::new()
            }
            fn reduce(&self, left: &mut String, right: String) {
                left.push_str(&right);
            }
        }
        let m = std::sync::Arc::new(Concat);
        let inst = MonoidInstance::new(&m);
        let r = SlotRegistry::new();
        let s = r.alloc();
        let left = Box::into_raw(Box::new(String::from("L"))) as *mut u8;
        r.register(s, left, inst.as_erased());
        for part in ["a", "b", "c"] {
            let v = Box::into_raw(Box::new(String::from(part))) as *mut u8;
            // SAFETY: live boxed String views of the registered monoid.
            unsafe { r.push_pending(s, v) };
        }
        assert_eq!(r.pending_total(), 3);
        assert_eq!(r.drain_idle(), 3);
        assert_eq!(r.pending_total(), 0);
        let v = r.unregister(s).unwrap();
        // SAFETY: sole owner after unregister; it is the Box<String>
        // registered above.
        let folded = unsafe { Box::from_raw(v as *mut String) };
        assert_eq!(*folded, "Labc", "pending folds must keep serial order");
    }
}
