//! Model-checked reducer-protocol tests (run with `--features model`).
//!
//! These drive the memory-mapped backend's hooks the way the scheduler
//! does around a steal — detach on the thief, deposit, hypermerge at the
//! join — under `cilkm_checker::model`, which explores every bounded
//! interleaving and every allowed weak-memory read. The SPA-map raw
//! accessors are trace-instrumented under this feature, so a missing
//! happens-before edge anywhere in the handoff chain would surface as a
//! data-race report, and a protocol bug as an assertion failure in some
//! schedule.

use std::sync::Arc;

use cilkm_checker as checker;
use cilkm_runtime::{DetachedViews, HyperHooks};

use crate::domain::Backend;
use crate::domain::DomainInner;
use crate::mmap::{lookup, MmapHooks};
use crate::monoid::{Monoid, MonoidInstance};

/// String concatenation: associative, *not* commutative — the stress
/// case for the hypermerge's serial-order discipline.
struct Concat;

impl Monoid for Concat {
    type View = String;
    fn identity(&self) -> String {
        String::new()
    }
    fn reduce(&self, left: &mut String, right: String) {
        left.push_str(&right);
    }
}

/// Appends `s` to the view of reducer slot (`page`, `idx`) in the
/// calling thread's current context, creating the view on first touch
/// exactly as a real reducer access would.
fn append(page: usize, idx: usize, inst: &MonoidInstance, domain: &DomainInner, s: &str) {
    let view = lookup(page, idx, inst, domain).expect("calling thread has no worker state");
    // SAFETY: `lookup` returned a live boxed `Concat::View` created by
    // this monoid instance, and this thread owns the current context.
    unsafe { (*(view as *mut String)).push_str(s) };
}

/// Reads the view of slot (`page`, `idx`) in the current context.
fn read(page: usize, idx: usize, inst: &MonoidInstance, domain: &DomainInner) -> String {
    let view = lookup(page, idx, inst, domain).expect("calling thread has no worker state");
    // SAFETY: as in `append`.
    unsafe { (*(view as *mut String)).clone() }
}

/// View transferal + hypermerge across a simulated steal: the thief
/// builds the serially-*later* view, detaches, and deposits; the owner
/// builds the serially-earlier view and merges at the join. Under every
/// schedule the merged view must be exactly "LR" — left-to-right monoid
/// order, nothing dropped, nothing reduced twice.
#[test]
fn hypermerge_is_left_to_right_and_exact() {
    checker::model(|| {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        let monoid = Arc::new(Concat);
        // One shared instance, as in a real `Reducer`: its address is
        // what SPA pairs store, so it must outlive every in-flight view.
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let deposit: Arc<checker::sync::Mutex<Option<DetachedViews>>> =
            Arc::new(checker::sync::Mutex::new(None));

        let (d2, m2, i2, dep2) = (
            Arc::clone(&domain),
            Arc::clone(&monoid),
            Arc::clone(&inst),
            Arc::clone(&deposit),
        );
        let thief = checker::thread::spawn(move || {
            let _keep_alive = m2;
            let hooks = MmapHooks::new(Arc::clone(&d2));
            let mut state = hooks.make_worker_state(1);
            append(0, 7, &i2, &d2, "R");
            let det = hooks.detach(state.as_mut());
            *dep2.lock() = Some(det);
        });

        let hooks = MmapHooks::new(Arc::clone(&domain));
        let mut state = hooks.make_worker_state(0);
        append(0, 7, &inst, &domain, "L");
        let det = loop {
            if let Some(d) = deposit.lock().take() {
                break d;
            }
            checker::thread::yield_now();
        };
        hooks.merge_right(state.as_mut(), det);
        thief.join().unwrap();
        assert_eq!(read(0, 7, &inst, &domain), "LR");
        // `state` drops here and drains the merged view.
    });
}

/// Transferal into an *empty* owner context (right set bigger than left)
/// takes the sweep-left-into-right path: every view must arrive exactly
/// once, at its own slot, unreduced.
#[test]
fn transferal_delivers_each_view_exactly_once() {
    checker::model(|| {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        let monoid = Arc::new(Concat);
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let deposit: Arc<checker::sync::Mutex<Option<DetachedViews>>> =
            Arc::new(checker::sync::Mutex::new(None));

        let (d2, m2, i2, dep2) = (
            Arc::clone(&domain),
            Arc::clone(&monoid),
            Arc::clone(&inst),
            Arc::clone(&deposit),
        );
        let thief = checker::thread::spawn(move || {
            let _keep_alive = m2;
            let hooks = MmapHooks::new(Arc::clone(&d2));
            let mut state = hooks.make_worker_state(1);
            append(0, 0, &i2, &d2, "A");
            append(0, 9, &i2, &d2, "B");
            let det = hooks.detach(state.as_mut());
            *dep2.lock() = Some(det);
        });

        let hooks = MmapHooks::new(Arc::clone(&domain));
        let mut state = hooks.make_worker_state(0);
        let det = loop {
            if let Some(d) = deposit.lock().take() {
                break d;
            }
            checker::thread::yield_now();
        };
        hooks.merge_right(state.as_mut(), det);
        thief.join().unwrap();
        // Each view present exactly once: a dropped view would read "",
        // a double merge "AA"/"BB".
        assert_eq!(read(0, 0, &inst, &domain), "A");
        assert_eq!(read(0, 9, &inst, &domain), "B");
    });
}
