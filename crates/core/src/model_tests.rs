//! Model-checked reducer-protocol tests (run with `--features model`).
//!
//! These drive the memory-mapped backend's hooks the way the scheduler
//! does around a steal — detach on the thief, deposit, hypermerge at the
//! join — under `cilkm_checker::model`, which explores every bounded
//! interleaving and every allowed weak-memory read. The SPA-map raw
//! accessors are trace-instrumented under this feature, so a missing
//! happens-before edge anywhere in the handoff chain would surface as a
//! data-race report, and a protocol bug as an assertion failure in some
//! schedule.
//!
//! Since PR 7 these tests run under the sleep-set DPOR engine with the
//! CHESS preemption bound *removed* (`Config::dpor()`): the reduction,
//! not the bound, keeps the schedule count tractable, so coverage is
//! genuinely exhaustive. The lock-free handoff test additionally runs a
//! 10k-schedule seeded PCT sweep at a thread count the old bounded DFS
//! could not reach.

use std::sync::Arc;

use cilkm_checker as checker;
use cilkm_runtime::{DetachedViews, HyperHooks};

use crate::domain::Backend;
use crate::domain::DomainInner;
use crate::mmap::{lookup, MmapHooks};
use crate::monoid::{Monoid, MonoidInstance};

/// String concatenation: associative, *not* commutative — the stress
/// case for the hypermerge's serial-order discipline.
struct Concat;

impl Monoid for Concat {
    type View = String;
    fn identity(&self) -> String {
        String::new()
    }
    fn reduce(&self, left: &mut String, right: String) {
        left.push_str(&right);
    }
}

/// Appends `s` to the view of reducer slot (`page`, `idx`) in the
/// calling thread's current context, creating the view on first touch
/// exactly as a real reducer access would.
fn append(page: usize, idx: usize, inst: &MonoidInstance, domain: &DomainInner, s: &str) {
    let view = lookup(page, idx, inst, domain).expect("calling thread has no worker state");
    // SAFETY: `lookup` returned a live boxed `Concat::View` created by
    // this monoid instance, and this thread owns the current context.
    unsafe { (*(view as *mut String)).push_str(s) };
}

/// Reads the view of slot (`page`, `idx`) in the current context.
fn read(page: usize, idx: usize, inst: &MonoidInstance, domain: &DomainInner) -> String {
    let view = lookup(page, idx, inst, domain).expect("calling thread has no worker state");
    // SAFETY: as in `append`.
    unsafe { (*(view as *mut String)).clone() }
}

/// View transferal + hypermerge across a simulated steal: the thief
/// builds the serially-*later* view, detaches, and deposits; the owner
/// builds the serially-earlier view and merges at the join. Under every
/// schedule the merged view must be exactly "LR" — left-to-right monoid
/// order, nothing dropped, nothing reduced twice.
#[test]
fn hypermerge_is_left_to_right_and_exact() {
    checker::model_with(checker::Config::dpor(), || {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        let monoid = Arc::new(Concat);
        // One shared instance, as in a real `Reducer`: its address is
        // what SPA pairs store, so it must outlive every in-flight view.
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let deposit: Arc<checker::sync::Mutex<Option<DetachedViews>>> =
            Arc::new(checker::sync::Mutex::new(None));

        let (d2, m2, i2, dep2) = (
            Arc::clone(&domain),
            Arc::clone(&monoid),
            Arc::clone(&inst),
            Arc::clone(&deposit),
        );
        let thief = checker::thread::spawn(move || {
            let _keep_alive = m2;
            let hooks = MmapHooks::new(Arc::clone(&d2));
            let mut state = hooks.make_worker_state(1);
            append(0, 7, &i2, &d2, "R");
            let det = hooks.detach(state.as_mut());
            *dep2.lock() = Some(det);
        });

        let hooks = MmapHooks::new(Arc::clone(&domain));
        let mut state = hooks.make_worker_state(0);
        append(0, 7, &inst, &domain, "L");
        let det = loop {
            if let Some(d) = deposit.lock().take() {
                break d;
            }
            checker::thread::yield_now();
        };
        hooks.merge_right(state.as_mut(), det);
        thief.join().unwrap();
        assert_eq!(read(0, 7, &inst, &domain), "LR");
        // `state` drops here and drains the merged view.
    });
}

/// Transferal into an *empty* owner context (right set bigger than left)
/// takes the sweep-left-into-right path: every view must arrive exactly
/// once, at its own slot, unreduced.
#[test]
fn transferal_delivers_each_view_exactly_once() {
    checker::model_with(checker::Config::dpor(), || {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        let monoid = Arc::new(Concat);
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let deposit: Arc<checker::sync::Mutex<Option<DetachedViews>>> =
            Arc::new(checker::sync::Mutex::new(None));

        let (d2, m2, i2, dep2) = (
            Arc::clone(&domain),
            Arc::clone(&monoid),
            Arc::clone(&inst),
            Arc::clone(&deposit),
        );
        let thief = checker::thread::spawn(move || {
            let _keep_alive = m2;
            let hooks = MmapHooks::new(Arc::clone(&d2));
            let mut state = hooks.make_worker_state(1);
            append(0, 0, &i2, &d2, "A");
            append(0, 9, &i2, &d2, "B");
            let det = hooks.detach(state.as_mut());
            *dep2.lock() = Some(det);
        });

        let hooks = MmapHooks::new(Arc::clone(&domain));
        let mut state = hooks.make_worker_state(0);
        let det = loop {
            if let Some(d) = deposit.lock().take() {
                break d;
            }
            checker::thread::yield_now();
        };
        hooks.merge_right(state.as_mut(), det);
        thief.join().unwrap();
        // Each view present exactly once: a dropped view would read "",
        // a double merge "AA"/"BB".
        assert_eq!(read(0, 0, &inst, &domain), "A");
        assert_eq!(read(0, 9, &inst, &domain), "B");
    });
}

/// Exchange-based transferal across a steal (DESIGN.md §16): with the
/// threshold forced to 1, the thief's detach takes the page-exchange
/// path — the occupied private page itself leaves the thief's region by
/// descriptor and crosses to the owner — and the hypermerge must still
/// fold exactly "LR" under every interleaving. The SPA raw accessors
/// are trace-instrumented, so a missing happens-before edge on the
/// handed-off page would surface as a data race, not just a wrong
/// string.
#[test]
fn exchange_handoff_is_left_to_right_and_exact() {
    checker::model_with(checker::Config::dpor(), || {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        // Force every non-empty page onto the exchange path.
        domain.set_exchange_threshold(1);
        let monoid = Arc::new(Concat);
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let deposit: Arc<checker::sync::Mutex<Option<DetachedViews>>> =
            Arc::new(checker::sync::Mutex::new(None));

        let (d2, m2, i2, dep2) = (
            Arc::clone(&domain),
            Arc::clone(&monoid),
            Arc::clone(&inst),
            Arc::clone(&deposit),
        );
        let thief = checker::thread::spawn(move || {
            let _keep_alive = m2;
            let hooks = MmapHooks::new(Arc::clone(&d2));
            let mut state = hooks.make_worker_state(1);
            append(0, 7, &i2, &d2, "R");
            let det = hooks.detach(state.as_mut());
            *dep2.lock() = Some(det);
        });

        let hooks = MmapHooks::new(Arc::clone(&domain));
        let mut state = hooks.make_worker_state(0);
        append(0, 7, &inst, &domain, "L");
        let det = loop {
            if let Some(d) = deposit.lock().take() {
                break d;
            }
            checker::thread::yield_now();
        };
        hooks.merge_right(state.as_mut(), det);
        thief.join().unwrap();
        assert_eq!(read(0, 7, &inst, &domain), "LR");
    });
}

/// An exchanged detach *attached* by a different worker: the returned
/// descriptors are mapped straight into the attaching worker's region
/// (one scattered `sys_pmap`, no per-view copying), and every view must
/// arrive exactly once at its own slot in every interleaving.
#[test]
fn exchanged_attach_delivers_each_view_exactly_once() {
    checker::model_with(checker::Config::dpor(), || {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        domain.set_exchange_threshold(1);
        let monoid = Arc::new(Concat);
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let deposit: Arc<checker::sync::Mutex<Option<DetachedViews>>> =
            Arc::new(checker::sync::Mutex::new(None));

        let (d2, m2, i2, dep2) = (
            Arc::clone(&domain),
            Arc::clone(&monoid),
            Arc::clone(&inst),
            Arc::clone(&deposit),
        );
        let thief = checker::thread::spawn(move || {
            let _keep_alive = m2;
            let hooks = MmapHooks::new(Arc::clone(&d2));
            let mut state = hooks.make_worker_state(1);
            append(0, 0, &i2, &d2, "A");
            append(0, 9, &i2, &d2, "B");
            let det = hooks.detach(state.as_mut());
            *dep2.lock() = Some(det);
        });

        let hooks = MmapHooks::new(Arc::clone(&domain));
        let mut state = hooks.make_worker_state(0);
        let det = loop {
            if let Some(d) = deposit.lock().take() {
                break d;
            }
            checker::thread::yield_now();
        };
        hooks.attach(state.as_mut(), det);
        thief.join().unwrap();
        // Exactly once, at its own slot: a dropped view reads "", a
        // doubled one "AA"/"BB".
        assert_eq!(read(0, 0, &inst, &domain), "A");
        assert_eq!(read(0, 9, &inst, &domain), "B");
    });
}

/// Lock-free handoff (DESIGN.md §13): concurrent region-exit handoffs
/// (`fold_or_park` — inline fold when the serial word is free, parked
/// pending node when it is contended) racing an owner-side drain must
/// neither lose a view nor fold one twice, in any interleaving and
/// under any allowed weak-memory read. Depending on the schedule each
/// thief folds inline or parks, so both branches are explored.
///
/// Exhaustive at *unbounded* preemption depth under DPOR — the old DFS
/// engine needed `preemptions: Some(3)` to terminate here. The
/// three-thief scale-up rides on the seeded PCT sweep below, where the
/// CAS-loop interleaving space outgrows exhaustion.
#[test]
fn pending_pushes_race_owner_drain_without_loss() {
    use crate::library::SumMonoid;
    checker::model_with(checker::Config::dpor(), || {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        let monoid = Arc::new(SumMonoid::<u64>::new());
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let slot = domain.alloc_slot();
        let leftmost = Box::into_raw(Box::new(1u64)) as *mut u8;
        domain.register_leftmost(slot, leftmost, inst.as_erased());

        let mut thieves = Vec::new();
        for add in [2u64, 4] {
            let (d, m, i) = (Arc::clone(&domain), Arc::clone(&monoid), Arc::clone(&inst));
            thieves.push(checker::thread::spawn(move || {
                let _keep_alive = (m, i);
                let v = Box::into_raw(Box::new(add)) as *mut u8;
                // SAFETY: live boxed u64 view of the registered
                // SumMonoid; the reducer outlives this handoff (main
                // joins before unregistering).
                unsafe { d.fold_or_park(slot, v) };
            }));
        }
        // The owner drains concurrently with the pushes.
        {
            let _borrow = domain.serial_user(slot);
            // SAFETY: serial word held; slot registered.
            unsafe { domain.drain_pending_slot(slot) };
        }
        for t in thieves {
            t.join().unwrap();
        }
        // Final serial point: fold any stragglers and read the total.
        let total = {
            let _borrow = domain.serial_user(slot);
            // SAFETY: serial word held; slot registered.
            unsafe { domain.drain_pending_slot(slot) };
            let v = domain.unregister_leftmost(slot).unwrap();
            // SAFETY: sole remaining pointer after unregister.
            unsafe { *Box::from_raw(v as *mut u64) }
        };
        assert_eq!(total, 7, "1 + 2 + 4: every view folded exactly once");
        domain.free_slot(slot);
    });
}

/// The push/drain handoff scaled up to *three* concurrent thieves — a
/// thread count no exhaustive engine here reaches — under 10,000 seeded
/// PCT schedules with
/// unbounded preemption depth — randomized coverage beyond what even
/// DPOR visits in one CI run. Seed fixed: deterministic, and any future
/// failure prints its own `CILKM_CHECK_SEED` reproducer.
#[test]
fn pending_pushes_survive_seeded_pct_sweep() {
    use crate::library::SumMonoid;
    let report = checker::try_model_with(checker::Config::pct(0xC11F_0007, 3, 10_000), || {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        let monoid = Arc::new(SumMonoid::<u64>::new());
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let slot = domain.alloc_slot();
        let leftmost = Box::into_raw(Box::new(1u64)) as *mut u8;
        domain.register_leftmost(slot, leftmost, inst.as_erased());

        let mut thieves = Vec::new();
        for add in [2u64, 4, 8] {
            let (d, m, i) = (Arc::clone(&domain), Arc::clone(&monoid), Arc::clone(&inst));
            thieves.push(checker::thread::spawn(move || {
                let _keep_alive = (m, i);
                let v = Box::into_raw(Box::new(add)) as *mut u8;
                // SAFETY: live boxed u64 view of the registered
                // SumMonoid; the reducer outlives this handoff (main
                // joins before unregistering).
                unsafe { d.fold_or_park(slot, v) };
            }));
        }
        {
            let _borrow = domain.serial_user(slot);
            // SAFETY: serial word held; slot registered.
            unsafe { domain.drain_pending_slot(slot) };
        }
        for t in thieves {
            t.join().unwrap();
        }
        let total = {
            let _borrow = domain.serial_user(slot);
            // SAFETY: serial word held; slot registered.
            unsafe { domain.drain_pending_slot(slot) };
            let v = domain.unregister_leftmost(slot).unwrap();
            // SAFETY: sole remaining pointer after unregister.
            unsafe { *Box::from_raw(v as *mut u64) }
        };
        assert_eq!(total, 15, "1 + 2 + 4 + 8: every view folded exactly once");
        domain.free_slot(slot);
    })
    .expect("lock-free handoff must survive the PCT sweep");
    assert_eq!(report.schedules, 10_000);
}

/// Pushes from one thread (= serialized regions) with an idle drainer
/// racing them: the fold must keep push order even when a drain lands
/// between pushes — over a non-commutative monoid a second drainer
/// folding out of turn would be visible as a scrambled string, and a
/// lost or doubled view as a missing/repeated character.
#[test]
fn racing_idle_drain_preserves_serial_fold_order() {
    checker::model_with(checker::Config::dpor(), || {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        let monoid = Arc::new(Concat);
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let slot = domain.alloc_slot();
        let leftmost = Box::into_raw(Box::new(String::from("L"))) as *mut u8;
        domain.register_leftmost(slot, leftmost, inst.as_erased());

        let d2 = Arc::clone(&domain);
        let drainer = checker::thread::spawn(move || {
            d2.idle_drain();
            d2.idle_drain();
        });
        for part in ["a", "b"] {
            let v = Box::into_raw(Box::new(String::from(part))) as *mut u8;
            // SAFETY: live boxed String view of the registered Concat
            // monoid; the reducer outlives the push.
            unsafe { domain.push_pending(slot, v) };
        }
        drainer.join().unwrap();
        let folded = {
            let _borrow = domain.serial_user(slot);
            // SAFETY: serial word held; slot registered.
            unsafe { domain.drain_pending_slot(slot) };
            let v = domain.unregister_leftmost(slot).unwrap();
            // SAFETY: sole remaining pointer after unregister.
            unsafe { *Box::from_raw(v as *mut String) }
        };
        assert_eq!(folded, "Lab", "drains must fold in push (serial) order");
        domain.free_slot(slot);
    });
}

/// Destructor for [`hazard_era_pin_prevents_use_after_retire`]'s node:
/// the plain write reported here is the "free"; if the collector could
/// free while a pinned reader still dereferences, the model's race
/// detector flags it against the reader's recorded read.
unsafe fn free_model_node(p: *mut u8) {
    checker::trace::note_write(p as usize, "pooled-node");
    // SAFETY: by this fn's contract `p` came from
    // `Box::into_raw(Box<u64>)` and is freed exactly once, by the
    // collector.
    drop(unsafe { Box::from_raw(p as *mut u64) });
}

/// The hazard-era collector under the weak-memory model: a reader pins,
/// loads the published pointer, and dereferences (a recorded plain
/// read); the retirer unlinks, retires, and sweeps. No interleaving may
/// free the node while the reader still holds it — a missing
/// happens-before edge in the era protocol would surface here as a
/// read/write race on the node.
#[test]
fn hazard_era_pin_prevents_use_after_retire() {
    use crate::reclaim::Collector;
    // Unbounded preemptions; the era protocol's CAS loops leave too many
    // genuinely dependent interleavings for full exhaustion, so cap the
    // budget — still ~25x the coverage the old bounded DFS run had.
    let config = checker::Config {
        max_schedules: 25_000,
        ..checker::Config::dpor()
    };
    checker::model_with(config, || {
        let collector = Arc::new(Collector::new());
        let published = Arc::new(checker::sync::atomic::AtomicPtr::new(Box::into_raw(
            Box::new(42u64),
        )));
        let (c2, p2) = (Arc::clone(&collector), Arc::clone(&published));
        let reader = checker::thread::spawn(move || {
            let guard = c2.pin();
            let p = p2.load(checker::sync::atomic::Ordering::Acquire);
            if !p.is_null() {
                // Simulated dereference of the protected node (what
                // `MapPool::pop` does with `(*head).next`).
                checker::trace::note_read(p as usize, "pooled-node");
            }
            drop(guard);
        });
        // Retirer: unlink, retire, and sweep eagerly.
        let p = published.swap(
            std::ptr::null_mut(),
            checker::sync::atomic::Ordering::AcqRel,
        );
        // SAFETY: the swap unlinked `p`; it is retired exactly once and
        // valid for `free_model_node`.
        unsafe { collector.retire(p as *mut u8, free_model_node) };
        collector.sweep();
        reader.join().unwrap();
        // Collector drop frees anything the sweep had to keep; ordered
        // after the reader by the join edge, so never racy.
    });
}

/// Negative control for the collector test: a reader that skips the pin
/// really does race the retirer's free, and DPOR (with the preemption
/// bound removed) must still reach the schedule that exhibits it — the
/// use-after-retire seeded-bug check from the acceptance criteria.
#[test]
fn unpinned_reader_races_retirer() {
    use crate::reclaim::Collector;
    let err = checker::try_model_with(checker::Config::dpor(), || {
        let collector = Arc::new(Collector::new());
        let published = Arc::new(checker::sync::atomic::AtomicPtr::new(Box::into_raw(
            Box::new(42u64),
        )));
        let p2 = Arc::clone(&published);
        let reader = checker::thread::spawn(move || {
            // BUG (intentional): no `pin()` guard, so nothing holds the
            // era back while we dereference.
            let p = p2.load(checker::sync::atomic::Ordering::Acquire);
            if !p.is_null() {
                checker::trace::note_read(p as usize, "pooled-node");
            }
        });
        let p = published.swap(
            std::ptr::null_mut(),
            checker::sync::atomic::Ordering::AcqRel,
        );
        // SAFETY: the swap unlinked `p`; it is retired exactly once and
        // valid for `free_model_node`.
        unsafe { collector.retire(p as *mut u8, free_model_node) };
        collector.sweep();
        reader.join().unwrap();
    })
    .expect_err("an unpinned dereference must race the collector's free");
    assert!(
        err.message.contains("data race"),
        "unexpected failure: {}",
        err.message
    );
}
