//! The hypermap hash table, re-implemented in the style of the Cilk++ /
//! Cilk Plus runtime (§3).
//!
//! Cilk Plus hashes the reducer's address into a bucket array of chained
//! nodes, expanding (doubling and rehashing) when the load factor reaches
//! one. The observable cost characteristics the paper reports follow from
//! that structure: a lookup's time "depends on how many items the hashed
//! bucket happens to contain, as well as whether it triggers a hash-table
//! expansion" (§8, Figure 6 discussion). We keep exactly that structure —
//! chained buckets, multiplicative hashing of the reducer id (our stand-in
//! for its address), load-factor-1 doubling — so those effects reproduce.

use cilkm_spa::ViewPair;

struct Node {
    key: u64,
    /// The reducer's slot id, carried alongside so collect-to-leftmost
    /// can route views without reverse-mapping addresses.
    slot: u32,
    pair: ViewPair,
    next: Option<Box<Node>>,
}

/// A context's hypermap: reducer id → local view.
pub struct HyperMap {
    buckets: Vec<Option<Box<Node>>>,
    len: usize,
}

// SAFETY: the raw view pointers stored in the buckets travel with their
// owning context (one thread at a time) and point at `M::View: Send`
// values, so moving the whole table between threads is sound.
unsafe impl Send for HyperMap {}

const INITIAL_BUCKETS: usize = 8;

#[inline]
fn hash(key: u64, n_buckets: usize) -> usize {
    // The Cilk Plus `hashfun` shape: the reducer's *address* xor-shifted
    // down to a bucket index (the paper, §3: "the address of a reducer is
    // used as a key to hash the local view").
    let mut k = key;
    k ^= k >> 21;
    k ^= k >> 8;
    (k as usize) & (n_buckets - 1)
}

impl HyperMap {
    /// An empty map. Allocation-free — detach is a pointer switch (§7).
    pub fn new() -> HyperMap {
        HyperMap {
            buckets: Vec::new(),
            len: 0,
        }
    }

    /// Number of views stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the map holds no views.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the view pair for `key`, walking the bucket chain.
    #[inline]
    pub fn get(&self, key: u64) -> Option<ViewPair> {
        if self.buckets.is_empty() {
            return None;
        }
        let mut node = self.buckets[hash(key, self.buckets.len())].as_deref();
        while let Some(n) = node {
            if n.key == key {
                return Some(n.pair);
            }
            node = n.next.as_deref();
        }
        None
    }

    /// Inserts a view pair for `key` (which must be absent), expanding the
    /// table first if the load factor would reach one. Returns `true` if
    /// the insert triggered an expansion.
    pub fn insert(&mut self, key: u64, slot: u32, pair: ViewPair) -> bool {
        debug_assert!(self.get(key).is_none(), "hypermap double insert {key}");
        let mut expanded = false;
        if self.buckets.is_empty() {
            self.buckets.resize_with(INITIAL_BUCKETS, || None);
        } else if self.len >= self.buckets.len() {
            self.expand();
            expanded = true;
        }
        let b = hash(key, self.buckets.len());
        let next = self.buckets[b].take();
        self.buckets[b] = Some(Box::new(Node {
            key,
            slot,
            pair,
            next,
        }));
        self.len += 1;
        expanded
    }

    /// Removes and returns the pair for `key`, if present.
    pub fn remove(&mut self, key: u64) -> Option<ViewPair> {
        if self.buckets.is_empty() {
            return None;
        }
        let b = hash(key, self.buckets.len());
        let mut cursor = &mut self.buckets[b];
        loop {
            match cursor {
                None => return None,
                Some(node) if node.key == key => {
                    let mut node = cursor.take().unwrap();
                    *cursor = node.next.take();
                    self.len -= 1;
                    return Some(node.pair);
                }
                Some(_) => {
                    cursor = &mut cursor.as_mut().unwrap().next;
                }
            }
        }
    }

    /// Drains all entries as `(key, slot, pair)`, leaving the map empty
    /// (buckets retained).
    pub fn drain(&mut self) -> Vec<(u64, u32, ViewPair)> {
        let mut out = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            let mut node = bucket.take();
            while let Some(mut n) = node {
                out.push((n.key, n.slot, n.pair));
                node = n.next.take();
            }
        }
        self.len = 0;
        out
    }

    /// Visits all entries without modifying the map.
    pub fn for_each(&self, mut f: impl FnMut(u64, u32, ViewPair)) {
        for bucket in &self.buckets {
            let mut node = bucket.as_deref();
            while let Some(n) = node {
                f(n.key, n.slot, n.pair);
                node = n.next.as_deref();
            }
        }
    }

    /// Longest bucket chain (test/diagnostic aid).
    pub fn max_chain(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| {
                let mut len = 0;
                let mut node = b.as_deref();
                while let Some(n) = node {
                    len += 1;
                    node = n.next.as_deref();
                }
                len
            })
            .max()
            .unwrap_or(0)
    }

    #[cold]
    fn expand(&mut self) {
        let new_size = self.buckets.len() * 2;
        let mut new_buckets: Vec<Option<Box<Node>>> = Vec::new();
        new_buckets.resize_with(new_size, || None);
        for bucket in &mut self.buckets {
            let mut node = bucket.take();
            while let Some(mut n) = node {
                node = n.next.take();
                let b = hash(n.key, new_size);
                n.next = new_buckets[b].take();
                new_buckets[b] = Some(n);
            }
        }
        self.buckets = new_buckets;
    }
}

impl Default for HyperMap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(tag: usize) -> ViewPair {
        ViewPair {
            view: (0x1000 + tag * 8) as *mut u8,
            monoid: std::ptr::null(),
        }
    }

    /// Address-like keys, as the real hypermap sees (heap pointers).
    fn key(i: u32) -> u64 {
        0x7f00_0000_0000 + (i as u64) * 64
    }

    #[test]
    fn insert_get_remove() {
        let mut m = HyperMap::new();
        assert!(m.get(key(3)).is_none());
        m.insert(key(3), 3, pair(3));
        assert_eq!(m.get(key(3)), Some(pair(3)));
        assert_eq!(m.remove(key(3)), Some(pair(3)));
        assert!(m.get(key(3)).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn expansion_preserves_entries() {
        let mut m = HyperMap::new();
        let mut expansions = 0;
        for i in 0..1000u32 {
            if m.insert(key(i), i, pair(i as usize)) {
                expansions += 1;
            }
        }
        assert!(expansions >= 5, "doubling from 8 to >=1024 several times");
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(key(i)), Some(pair(i as usize)), "key {i}");
        }
    }

    #[test]
    fn remove_from_middle_of_chain() {
        // Force collisions by using many keys in a small table.
        let mut m = HyperMap::new();
        for i in 0..8u32 {
            m.insert(key(i), i, pair(i as usize));
        }
        assert!(m.max_chain() >= 1);
        for i in (0..8u32).step_by(2) {
            assert_eq!(m.remove(key(i)), Some(pair(i as usize)));
        }
        for i in 0..8u32 {
            if i % 2 == 0 {
                assert!(m.get(key(i)).is_none());
            } else {
                assert_eq!(m.get(key(i)), Some(pair(i as usize)));
            }
        }
    }

    #[test]
    fn drain_empties_and_returns_all() {
        let mut m = HyperMap::new();
        for i in 0..50u32 {
            m.insert(key(i), i, pair(i as usize));
        }
        let mut d = m.drain();
        d.sort_by_key(|e| e.0);
        assert_eq!(d.len(), 50);
        assert_eq!(d[49], (key(49), 49, pair(49)));
        assert!(m.is_empty());
        // Reusable after drain.
        m.insert(key(7), 7, pair(7));
        assert_eq!(m.get(key(7)), Some(pair(7)));
    }

    #[test]
    fn for_each_visits_everything() {
        let mut m = HyperMap::new();
        for i in 0..20u32 {
            m.insert(key(i * 3), i, pair(i as usize));
        }
        let mut n = 0;
        m.for_each(|_, _, _| n += 1);
        assert_eq!(n, 20);
        assert_eq!(m.len(), 20);
    }

    #[test]
    fn new_map_allocates_nothing_until_insert() {
        let m = HyperMap::new();
        assert_eq!(m.buckets.capacity(), 0);
    }
}
