//! The hypermap reducer backend — our re-implementation of the Cilk Plus
//! mechanism the paper uses as its baseline (§3).
//!
//! Each execution context owns a [`HyperMap`] (a chained hash table from
//! reducer id to view). Lookups hash and probe; first accesses after a
//! steal lazily create identity views and insert them; view transferal is
//! a pointer switch (the whole map moves); hypermerge sweeps the smaller
//! map into the larger, invoking the monoid reduce for keys present in
//! both.

mod table;

pub use table::HyperMap;

use std::any::Any;
use std::cell::Cell;
use std::sync::Arc;

use cilkm_runtime::{DetachedViews, HyperHooks};
use cilkm_spa::ViewPair;

use crate::domain::{DomainInner, Slot};
use crate::instrument::Instrument;
use crate::monoid::MonoidInstance;
use cilkm_obs::profile::Burden;

/// Per-worker state: the current context's hypermap.
///
/// The map is boxed because that is how Cilk Plus holds it too
/// (`w->reducer_map` is a pointer to a heap-allocated `cilkred_map`): the
/// lookup path pays one extra dependent load to reach the buckets, view
/// transferal switches the pointer, and a thief's fresh context is a
/// freshly allocated empty map (§3).
pub struct HypermapWorkerState {
    domain: Arc<DomainInner>,
    current: Box<HyperMap>,
    lookups: Cell<u64>,
    /// Single-entry cache of the last successful lookup, `(key, view)`.
    /// Key 0 means empty (reducer keys are non-null heap addresses).
    /// Every hook that changes which view the context owns clears it —
    /// see [`HypermapWorkerState::forget_last`].
    last: Cell<(u64, *mut u8)>,
}

// SAFETY: the state is owned by exactly one worker at a time and handed
// between threads only while quiescent (it travels as
// `Box<dyn Any + Send>`); the raw view pointer in the lookup cache is
// never dereferenced off-worker, and the views it owns are `M::View:
// Send` behind their type-erased pointers.
unsafe impl Send for HypermapWorkerState {}

thread_local! {
    static HYPERMAP_TLS: Cell<*mut HypermapWorkerState> = const { Cell::new(std::ptr::null_mut()) };
}

impl HypermapWorkerState {
    fn flush_lookups(&self) {
        let n = self.lookups.take();
        if n != 0 {
            self.domain.instrument.lookups.add(n);
        }
    }

    /// Clears the last-lookup cache; required in every hook that changes
    /// which view the current context owns (a stale hit would hand out a
    /// view that has been transferred or folded away).
    fn forget_last(&self) {
        self.last.set((0, std::ptr::null_mut()));
    }
}

impl Drop for HypermapWorkerState {
    fn drop(&mut self) {
        self.flush_lookups();
        HYPERMAP_TLS.with(|c| c.set(std::ptr::null_mut()));
        // Any leftover views (a panicked region) are destroyed, not leaked.
        for (_, _, pair) in self.current.drain() {
            // SAFETY: every pair in this context's hypermap stores the
            // erased address of the live `MonoidInstance` that created
            // `pair.view`, and draining removes the pair so the view is
            // dropped exactly once.
            unsafe { MonoidInstance::from_erased(pair.monoid).drop_view(pair.view) };
        }
    }
}

/// The reducer lookup, hypermap style: hash the reducer id, walk the
/// bucket chain, lazily creating an identity view on a miss.
///
/// Returns `None` when the calling thread is not a worker of `domain`'s
/// pool (the caller then takes the serial leftmost path).
///
/// Deliberately `#[inline(never)]`: in Cilk Plus every reducer access is
/// an opaque call into the runtime (`__cilkrts_hyper_lookup` through the
/// ABI of [17]), whereas the memory-mapped lookup of Cilk-M compiles to
/// straight-line loads because the "map" is the virtual-memory hardware.
/// Keeping the hypermap lookup out-of-line preserves that structural
/// difference, which is part of what Figure 1 measures.
// lint: hot-path
#[inline(never)]
pub(crate) fn lookup(slot: Slot, inst: &MonoidInstance, domain: &DomainInner) -> Option<*mut u8> {
    let ptr = HYPERMAP_TLS.with(|c| c.get());
    if ptr.is_null() {
        return None;
    }
    // The hash key is the reducer's address (§3), as in Cilk Plus.
    let key = inst.as_erased() as u64;
    // SAFETY: the TLS pointer is installed by `install_tls` for the
    // worker's lifetime and only this thread dereferences it; no `&mut`
    // overlaps because lookups never reenter the scheduler.
    unsafe {
        let st = &*ptr;
        assert!(
            std::ptr::eq(Arc::as_ptr(&st.domain), domain),
            "reducer used on a worker of a different pool"
        );
        if crate::instrument::COUNT_LOOKUPS {
            st.lookups.set(st.lookups.get() + 1);
        }
        // Same reducer as last time: skip the hash probe entirely.
        let (last_key, last_view) = st.last.get();
        if last_key == key {
            return Some(last_view);
        }
        if let Some(pair) = st.current.get(key) {
            st.last.set((key, pair.view));
            return Some(pair.view);
        }
    }
    lookup_miss(key, slot, inst, domain, ptr)
}

/// The outlined miss path: creates and inserts an identity view (at most
/// once per reducer per steal).
#[cold]
#[inline(never)]
fn lookup_miss(
    key: u64,
    slot: Slot,
    inst: &MonoidInstance,
    domain: &DomainInner,
    ptr: *mut HypermapWorkerState,
) -> Option<*mut u8> {
    // SAFETY: `ptr` is the caller's live TLS state; the borrow is
    // re-derived after the user `identity()` call rather than held
    // across it, so no aliasing `&mut` can exist.
    unsafe {
        // Create an identity view (user code — no state borrow held).
        let t0 = std::time::Instant::now();
        let view = inst.identity();
        domain.instrument.view_creations.inc();
        Instrument::add_short_ns(
            &domain.instrument.view_creation_ns,
            t0,
            Burden::ViewCreation,
        );

        let t1 = std::time::Instant::now();
        (*ptr).current.insert(
            key,
            slot,
            ViewPair {
                view,
                monoid: inst.as_erased(),
            },
        );
        domain.instrument.view_insertions.inc();
        Instrument::add_short_ns(
            &domain.instrument.view_insertion_ns,
            t1,
            Burden::ViewInsertion,
        );
        (*ptr).last.set((key, view));
        Some(view)
    }
}

/// Removes (and returns) the current context's view for `slot`, if the
/// calling thread is a worker of `domain`'s pool and holds one. Used by
/// serial-point reads and reducer destruction.
pub(crate) fn remove_current(key: u64, domain: &DomainInner) -> Option<*mut u8> {
    let ptr = HYPERMAP_TLS.with(|c| c.get());
    if ptr.is_null() {
        return None;
    }
    // SAFETY: as in `lookup` — thread-local state, no live borrows, and
    // no user code runs inside the block.
    unsafe {
        let st = &mut *ptr;
        assert!(std::ptr::eq(Arc::as_ptr(&st.domain), domain));
        st.forget_last();
        st.current.remove(key).map(|p| p.view)
    }
}

/// The hypermap implementation of the scheduler hooks.
pub struct HypermapHooks {
    domain: Arc<DomainInner>,
}

impl HypermapHooks {
    /// Hooks for `domain`.
    pub fn new(domain: Arc<DomainInner>) -> HypermapHooks {
        HypermapHooks { domain }
    }

    fn ins(&self) -> &Instrument {
        &self.domain.instrument
    }
}

impl HyperHooks for HypermapHooks {
    fn make_worker_state(&self, _index: usize) -> Box<dyn Any + Send> {
        let state = Box::new(HypermapWorkerState {
            domain: Arc::clone(&self.domain),
            current: Box::new(HyperMap::new()),
            lookups: Cell::new(0),
            last: Cell::new((0, std::ptr::null_mut())),
        });
        // The Box's heap address is stable; publish it for the fast path.
        let raw = &*state as *const HypermapWorkerState as *mut HypermapWorkerState;
        HYPERMAP_TLS.with(|c| c.set(raw));
        state
    }

    fn detach(&self, state: &mut dyn Any) -> DetachedViews {
        let st = state
            .downcast_mut::<HypermapWorkerState>()
            .expect("hypermap state");
        st.flush_lookups();
        st.forget_last();
        let t0 = Instrument::transferal_timer();
        // View transferal in the hypermap scheme: switch a few pointers —
        // the whole map is handed over, and the context gets a freshly
        // created empty map, as on a steal in Cilk Plus (§3, §7).
        let map = std::mem::replace(&mut st.current, Box::new(HyperMap::new()));
        let n = map.len() as u64;
        if n != 0 {
            self.ins().transferals.inc();
            self.ins().transferal_views.add(n);
        }
        self.ins().finish_transferal(t0);
        // `map` is already a heap allocation; hand it over as-is.
        map
    }

    fn attach(&self, state: &mut dyn Any, views: DetachedViews) {
        let st = state
            .downcast_mut::<HypermapWorkerState>()
            .expect("hypermap state");
        let map = views.downcast::<HyperMap>().expect("hypermap views");
        debug_assert!(st.current.is_empty(), "attach over non-empty context");
        st.forget_last();
        st.current = map;
    }

    fn merge_right(&self, state: &mut dyn Any, right: DetachedViews) {
        // Raw pointer: monoid reduce is user code that may itself perform
        // reducer lookups through the TLS path, so no `&mut` to the state
        // may be live across those calls.
        let st: *mut HypermapWorkerState = state
            .downcast_mut::<HypermapWorkerState>()
            .expect("hypermap state");
        let mut right = right.downcast::<HyperMap>().expect("hypermap views");
        // SAFETY: `st` came from the exclusive `&mut dyn Any` above; the
        // raw-pointer hop only shortens the borrow, per the comment.
        unsafe { (*st).forget_last() };
        let t0 = crate::instrument::thread_time_ns();
        self.ins().merges.inc();

        // SAFETY: `st` is exclusively ours (see above); every `&mut` is
        // re-derived between `reduce_into` calls so user reduce code may
        // itself perform lookups through the TLS pointer.
        unsafe {
            let left_len = (*st).current.len();
            if right.len() <= left_len {
                // Sweep the smaller (right) set into the current map.
                for (key, slot, rpair) in right.drain() {
                    let existing = (*st).current.get(key);
                    match existing {
                        Some(lpair) => {
                            self.ins().merge_pairs.inc();
                            MonoidInstance::from_erased(rpair.monoid)
                                .reduce_into(lpair.view, rpair.view);
                        }
                        None => {
                            (*st).current.insert(key, slot, rpair);
                        }
                    }
                }
            } else {
                // Sweep the smaller (left) set into the right map, keeping
                // left as the serially-earlier operand, then adopt it.
                let drained = (*st).current.drain();
                for (key, slot, lpair) in drained {
                    match right.remove(key) {
                        Some(rpair) => {
                            self.ins().merge_pairs.inc();
                            MonoidInstance::from_erased(lpair.monoid)
                                .reduce_into(lpair.view, rpair.view);
                            right.insert(key, slot, lpair);
                        }
                        None => {
                            right.insert(key, slot, lpair);
                        }
                    }
                }
                (*st).current = right;
            }
        }
        Instrument::add_merge_ns(&self.ins().merge_ns, t0);
    }

    fn collect_root(&self, state: &mut dyn Any) {
        let st: *mut HypermapWorkerState = state
            .downcast_mut::<HypermapWorkerState>()
            .expect("hypermap state");
        // SAFETY: exclusive access via the `&mut dyn Any` argument; the
        // fold callbacks run domain code, not user monoid code.
        unsafe {
            (*st).flush_lookups();
            (*st).forget_last();
            let drained = (*st).current.drain();
            for (_, slot, pair) in drained {
                // Lock-free handoff (DESIGN.md §13): fold inline when
                // the slot's serial word is free (the common case at a
                // region boundary), else park the view on the slot's
                // pending-merge list for an off-critical-path drain.
                // SAFETY: `pair.view` is a live boxed view of this
                // slot's monoid and the reducer is still registered
                // (views must not outlive their reducer).
                self.domain.fold_or_park(slot, pair.view);
            }
        }
    }

    fn discard(&self, views: DetachedViews) {
        // Discard runs on a panic path, where the current context may
        // unwind without ever reaching a detach/collect; flush the
        // calling worker's hot-path lookup count here so the domain
        // totals stay exact even when one side of a join panics.
        let ptr = HYPERMAP_TLS.with(|c| c.get());
        if !ptr.is_null() {
            // SAFETY: the TLS pointer is the calling worker's live state;
            // `flush_lookups` takes `&self` and only touches the `Cell`
            // counter and shared atomics.
            unsafe { (*ptr).flush_lookups() };
        }
        let mut map = *views.downcast::<HyperMap>().expect("hypermap views");
        for (_, _, pair) in map.drain() {
            // SAFETY: each drained pair stores the erased address of the
            // live instance that created its view; draining drops each
            // view exactly once.
            unsafe { MonoidInstance::from_erased(pair.monoid).drop_view(pair.view) };
        }
    }

    fn drain_pending(&self) {
        self.domain.idle_drain();
    }
}
