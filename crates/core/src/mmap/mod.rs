//! The memory-mapped reducer backend — the paper's contribution (§4–§7).
//!
//! Each worker owns a TLMM region (simulated by `cilkm-tlmm`) whose pages
//! hold **private SPA maps**: arrays of (view pointer, monoid pointer)
//! pairs indexed by the reducer's slot — the `tlmm_addr` of §6. The
//! moving parts:
//!
//! * **Thread-local indirection (§5)** — the region stores only pointers;
//!   views live on the shared heap, so hypermerges need no remapping and
//!   no pointer swizzling, and the region itself needs only a trivial
//!   fixed-size-slot allocator (the domain's slot allocator).
//! * **Lookup (§6)** — resolve the slot's private SPA element and test
//!   the view pointer: a couple of loads and one predictable branch. A
//!   miss (at most once per reducer per steal) lazily creates an identity
//!   view and inserts it: one pointer-pair write plus a log append.
//! * **View transferal by copying (§7)** — a terminating context copies
//!   its private pairs into **public SPA maps** in shared memory, zeroing
//!   the private entries as it goes, so the worker returns to work-
//!   stealing with a provably empty private region. Public maps are
//!   page-sized, born zeroed, and recycled through per-worker pools with
//!   a global overflow pool, in the manner of Hoard.
//! * **Hypermerge (§7)** — sweep the view set with *fewer* views into the
//!   one with more, reducing pairs in serial order and zeroing the swept
//!   set, which is thereby recyclable.

use std::any::Any;
use std::cell::Cell;
use std::sync::Arc;

use cilkm_runtime::{DetachedViews, HyperHooks};
use cilkm_spa::{InsertOutcome, SpaMapBox, SpaMapRef, ViewPair, VIEWS_PER_MAP};
use cilkm_tlmm::{PageDesc, TlmmRegion};

use crate::domain::{DomainInner, Slot};
use crate::instrument::Instrument;
use crate::monoid::MonoidInstance;
use cilkm_obs::profile::Burden;

/// How many empty public SPA maps a worker caches locally before spilling
/// half to the domain's global pool.
const LOCAL_POOL_CAP: usize = 8;

/// Per-worker state: the TLMM region, the private SPA maps living in it,
/// and the local recycle pool of public maps.
pub struct MmapWorkerState {
    domain: Arc<DomainInner>,
    region: TlmmRegion,
    /// Private SPA map accessors, one per mapped region page.
    pages: Vec<SpaMapRef>,
    /// Descriptors of the mapped pages (for cleanup).
    descs: Vec<PageDesc>,
    /// Empty, zeroed private pages ready for remapping (filled when a
    /// suspended context is resumed and the interim context's pages are
    /// retired).
    free_pages: Vec<(PageDesc, SpaMapRef)>,
    /// Local pool of empty public SPA maps.
    local_pool: Vec<SpaMapBox>,
    lookups: Cell<u64>,
    /// Single-entry cache of the last successful lookup. Keyed by
    /// (domain, page, idx) so a hit needs no map walk and no domain
    /// re-validation; every hook that can change the view owned by the
    /// current context (detach, attach, merge, suspend, resume, root
    /// collection, removal) must clear it — see [`MmapWorkerState::forget_last`].
    last: Cell<LastLookup>,
    /// Number of views currently in the private maps (drives the
    /// sweep-smaller choice during hypermerge).
    current_views: usize,
}

/// The last-lookup cache line: the key identifies one reducer slot in one
/// domain; `view` is its resolved view pointer.
#[derive(Copy, Clone)]
struct LastLookup {
    domain: *const DomainInner,
    page: usize,
    idx: usize,
    view: *mut u8,
}

impl LastLookup {
    const EMPTY: LastLookup = LastLookup {
        domain: std::ptr::null(),
        page: usize::MAX,
        idx: usize::MAX,
        view: std::ptr::null_mut(),
    };
}

// SAFETY: the state is owned by exactly one worker at a time and handed
// between threads only while quiescent (it travels as
// `Box<dyn Any + Send>`); the raw pointers in the lookup cache are never
// dereferenced off-worker.
unsafe impl Send for MmapWorkerState {}

/// The thread-local fast-path descriptor: a snapshot of the worker's
/// private page table. Real Cilk-M needs none of this — the MMU *is* the
/// table — so the simulation keeps its stand-in as short as possible:
/// one TLS load yields the page array base, length, and owning domain.
#[derive(Copy, Clone)]
struct MmapTls {
    pages: *const SpaMapRef,
    len: usize,
    domain: *const DomainInner,
    state: *mut MmapWorkerState,
}

impl MmapTls {
    const NULL: MmapTls = MmapTls {
        pages: std::ptr::null(),
        len: 0,
        domain: std::ptr::null(),
        state: std::ptr::null_mut(),
    };
}

thread_local! {
    static MMAP_TLS: Cell<MmapTls> = const { Cell::new(MmapTls::NULL) };
}

/// Refreshes the TLS snapshot after any change to the page table.
fn publish_tls(state: *mut MmapWorkerState) {
    // SAFETY: callers pass their own live worker state; only the fields'
    // addresses are snapshotted, no long-lived reference escapes.
    unsafe {
        let st = &*state;
        MMAP_TLS.with(|c| {
            c.set(MmapTls {
                pages: st.pages.as_ptr(),
                len: st.pages.len(),
                domain: Arc::as_ptr(&st.domain),
                state,
            })
        });
    }
}

/// A detached view set: public SPA maps produced by view transferal,
/// tagged with the private page index each came from.
pub struct MmapDetached {
    maps: Vec<(u32, SpaMapBox)>,
    count: usize,
}

/// A *suspended* context: the worker's private pages themselves, set
/// aside wholesale. Because SPA-map accessors point at the simulated
/// physical pages, the views never move — suspension is O(#pages)
/// pointer swaps and resumption is one batched `sys_pmap`, exactly the
/// "remapping amortized against steals" of §5. Never crosses workers.
struct MmapSuspended {
    descs: Vec<PageDesc>,
    pages: Vec<SpaMapRef>,
    views: usize,
}

// SAFETY: the suspended pages travel with their (quiescent) owning
// context exactly like `MmapWorkerState` itself.
unsafe impl Send for MmapSuspended {}

impl MmapDetached {
    /// Number of views carried.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl MmapWorkerState {
    fn flush_lookups(&self) {
        let n = self.lookups.take();
        if n != 0 {
            self.domain.instrument.lookups.add(n);
        }
    }

    /// Clears the last-lookup cache. Must run in every hook that changes
    /// which view the current context owns for any slot: a stale entry
    /// would silently resolve a lookup to a view that has been handed to
    /// another context (or folded away), breaking reducer semantics.
    fn forget_last(&self) {
        self.last.set(LastLookup::EMPTY);
    }

    /// Maps fresh zeroed pages so the private maps cover `page` (a
    /// simulated `sys_palloc` + one batched `sys_pmap`, amortized against
    /// steals as §5 argues).
    #[cold]
    fn ensure_page(&mut self, page: usize) {
        if page < self.pages.len() {
            return;
        }
        let first_new = self.pages.len();
        // Prefer recycled (empty, zeroed) pages over fresh allocations.
        let new_descs: Vec<PageDesc> = (first_new..=page)
            .map(|_| match self.free_pages.pop() {
                Some((pd, _)) => pd,
                None => self.region.arena().palloc(),
            })
            .collect();
        self.region.pmap(first_new, &new_descs);
        for (i, pd) in new_descs.into_iter().enumerate() {
            let base = self.region.arena().page_base(pd);
            debug_assert_eq!(base, self.region.page_base(first_new + i));
            // Fresh and recycled pages are zeroed: valid empty SPA maps.
            // SAFETY: `base` is the just-mapped arena page, zeroed (an
            // empty map layout) and private to this worker.
            self.pages.push(unsafe { SpaMapRef::from_raw(base) });
            self.descs.push(pd);
        }
        publish_tls(self as *mut MmapWorkerState);
    }

    fn take_map(&mut self) -> SpaMapBox {
        self.local_pool
            .pop()
            .unwrap_or_else(|| self.domain.take_public_map())
    }

    fn recycle_map(&mut self, map: SpaMapBox) {
        debug_assert!(map.as_ref().is_empty());
        if self.local_pool.len() < LOCAL_POOL_CAP {
            self.local_pool.push(map);
        } else {
            // Rebalance in the manner of Hoard: spill half the local pool.
            let spill = self.local_pool.split_off(LOCAL_POOL_CAP / 2);
            self.domain.recycle_public_maps(spill);
            self.domain.recycle_public_maps([map]);
        }
    }
}

impl Drop for MmapWorkerState {
    fn drop(&mut self) {
        self.flush_lookups();
        MMAP_TLS.with(|c| c.set(MmapTls::NULL));
        // Destroy any leftover views (possible after a panicked region).
        for page in &self.pages {
            // SAFETY: surviving pairs store the erased address of the
            // live instance that created their views; drain visits each
            // exactly once.
            page.drain(|_, pair| unsafe {
                MonoidInstance::from_erased(pair.monoid).drop_view(pair.view);
            });
        }
        for pd in self.descs.drain(..) {
            self.region.arena().pfree(pd);
        }
        for (pd, _) in self.free_pages.drain(..) {
            self.region.arena().pfree(pd);
        }
    }
}

/// Copies out the `SpaMapRef` accessor for private page `pidx` through a
/// raw state pointer, with an explicit short-lived borrow (the borrow ends
/// before any user code can run).
///
/// # Safety
///
/// `st` must point to a live `MmapWorkerState` on the current thread and
/// `pidx` must be a mapped page index.
#[inline]
unsafe fn page_at(st: *mut MmapWorkerState, pidx: usize) -> SpaMapRef {
    (&(*st).pages)[pidx]
}

/// The memory-mapped reducer lookup (§6): on the hit path, either a
/// single-entry cache hit (three compares against the last lookup) or
/// the paper's two loads and a predictable branch through the private
/// SPA map, with no counter traffic in plain release builds.
///
/// Returns `None` when the calling thread is not a worker of `domain`'s
/// pool (the caller then takes the serial leftmost path).
// lint: hot-path
#[inline(always)]
pub(crate) fn lookup(
    page: usize,
    idx: usize,
    inst: &MonoidInstance,
    domain: &DomainInner,
) -> Option<*mut u8> {
    let tls = MMAP_TLS.with(|c| c.get());
    if tls.state.is_null() {
        return None;
    }
    // SAFETY: the TLS snapshot points at this worker's live state and
    // page array; only shared reads happen on the fast path, and the
    // slot pointer dereference stays inside the mapped SPA page.
    unsafe {
        let st = &*tls.state;
        if crate::instrument::COUNT_LOOKUPS {
            st.lookups.set(st.lookups.get() + 1);
        }
        // Same reducer as last time? The cache key includes the domain,
        // so a hit needs no separate pool-membership check.
        let last = st.last.get();
        if last.page == page && last.idx == idx && std::ptr::eq(last.domain, domain) {
            return Some(last.view);
        }
        assert!(
            std::ptr::eq(tls.domain, domain),
            "reducer used on a worker of a different pool"
        );
        if page < tls.len {
            // The fast path the paper counts: dereference the slot's
            // private SPA element and test the view pointer. This read
            // bypasses the SpaMapRef accessors, so record it for the
            // model checker explicitly (same whole-map granularity).
            let map = *tls.pages.add(page);
            #[cfg(feature = "model")]
            cilkm_checker::trace::note_read(map.slot_ptr(0) as usize, "SpaMap");
            let view = (*map.slot_ptr(idx)).view;
            if !view.is_null() {
                st.last.set(LastLookup {
                    domain,
                    page,
                    idx,
                    view,
                });
                return Some(view);
            }
        }
    }
    lookup_miss(page, idx, inst, domain, tls.state)
}

/// The outlined miss path: creates and inserts an identity view. Happens
/// at most once per reducer per steal (§6), so it stays out of line to
/// keep the hit path small enough to inline everywhere.
#[cold]
#[inline(never)]
fn lookup_miss(
    page: usize,
    idx: usize,
    inst: &MonoidInstance,
    domain: &DomainInner,
    ptr: *mut MmapWorkerState,
) -> Option<*mut u8> {
    // SAFETY: `ptr` is the caller's live TLS state; `&mut`s are
    // re-derived around the user `identity()` call, never held across
    // it.
    unsafe {
        (*ptr).ensure_page(page);

        let t0 = std::time::Instant::now();
        let view = inst.identity();
        domain.instrument.view_creations.inc();
        Instrument::add_short_ns(
            &domain.instrument.view_creation_ns,
            t0,
            Burden::ViewCreation,
        );

        let t1 = std::time::Instant::now();
        let outcome = page_at(ptr, page).insert(
            idx,
            ViewPair {
                view,
                monoid: inst.as_erased(),
            },
        );
        if outcome == InsertOutcome::Overflowed {
            domain.instrument.log_overflows.inc();
        }
        (*ptr).current_views += 1;
        domain.instrument.view_insertions.inc();
        Instrument::add_short_ns(
            &domain.instrument.view_insertion_ns,
            t1,
            Burden::ViewInsertion,
        );
        (*ptr).last.set(LastLookup {
            domain,
            page,
            idx,
            view,
        });
        Some(view)
    }
}

/// Removes (and returns) the current context's view for `slot`, if any.
pub(crate) fn remove_current(slot: Slot, domain: &DomainInner) -> Option<*mut u8> {
    let tls = MMAP_TLS.with(|c| c.get());
    if tls.state.is_null() {
        return None;
    }
    let page = slot as usize / VIEWS_PER_MAP;
    let idx = slot as usize % VIEWS_PER_MAP;
    // SAFETY: thread-local state of the calling worker; no user code
    // runs inside the block, so the `&mut` cannot alias.
    unsafe {
        let st = &mut *tls.state;
        assert!(std::ptr::eq(Arc::as_ptr(&st.domain), domain));
        st.forget_last();
        if page < st.pages.len() && !st.pages[page].get(idx).is_null() {
            let pair = st.pages[page].remove(idx);
            st.current_views -= 1;
            Some(pair.view)
        } else {
            None
        }
    }
}

/// The memory-mapped implementation of the scheduler hooks.
pub struct MmapHooks {
    domain: Arc<DomainInner>,
}

impl MmapHooks {
    /// Hooks for `domain`.
    pub fn new(domain: Arc<DomainInner>) -> MmapHooks {
        MmapHooks { domain }
    }

    fn ins(&self) -> &Instrument {
        &self.domain.instrument
    }
}

impl HyperHooks for MmapHooks {
    fn make_worker_state(&self, _index: usize) -> Box<dyn Any + Send> {
        let state = Box::new(MmapWorkerState {
            domain: Arc::clone(&self.domain),
            region: TlmmRegion::new(Arc::clone(&self.domain.arena)),
            pages: Vec::new(),
            descs: Vec::new(),
            free_pages: Vec::new(),
            local_pool: Vec::new(),
            lookups: Cell::new(0),
            last: Cell::new(LastLookup::EMPTY),
            current_views: 0,
        });
        let raw = &*state as *const MmapWorkerState as *mut MmapWorkerState;
        publish_tls(raw);
        state
    }

    fn detach(&self, state: &mut dyn Any) -> DetachedViews {
        let st = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        st.flush_lookups();
        st.forget_last();
        let t0 = Instrument::transferal_timer();
        let mut maps = Vec::new();
        let mut count = 0usize;
        if st.current_views != 0 {
            for pidx in 0..st.pages.len() {
                let private = st.pages[pidx];
                if private.nvalid() == 0 {
                    continue;
                }
                // The copying strategy of §7: copy each valid pair into a
                // public SPA map, zeroing the private entry as we go.
                let public = st.take_map();
                let public_ref = public.as_ref();
                private.drain(|idx, pair| {
                    public_ref.insert(idx, pair);
                });
                count += public_ref.nvalid();
                maps.push((pidx as u32, public));
            }
            st.current_views = 0;
        }
        if count != 0 {
            self.ins().transferals.inc();
            self.ins().transferal_views.add(count as u64);
        }
        self.ins().finish_transferal(t0);
        Box::new(MmapDetached { maps, count })
    }

    fn attach(&self, state: &mut dyn Any, views: DetachedViews) {
        let st = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        let det = *views.downcast::<MmapDetached>().expect("mmap views");
        debug_assert_eq!(st.current_views, 0, "attach over non-empty context");
        st.forget_last();
        let t0 = Instrument::transferal_timer();
        for (pidx, public) in det.maps {
            let pidx = pidx as usize;
            st.ensure_page(pidx);
            let private = st.pages[pidx];
            public.as_ref().drain(|idx, pair| {
                private.insert(idx, pair);
            });
            st.recycle_map(public);
        }
        st.current_views = det.count;
        self.ins().finish_transferal(t0);
    }

    fn merge_right(&self, state: &mut dyn Any, right: DetachedViews) {
        // Raw-pointer discipline: monoid reduce operations are user code
        // and may perform reducer lookups through MMAP_TLS; no `&mut` to
        // the state may be live across them.
        let st: *mut MmapWorkerState = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        let det = *right.downcast::<MmapDetached>().expect("mmap views");
        // SAFETY: `st` came from the exclusive `&mut dyn Any` above; the
        // raw-pointer hop only shortens the borrow, per the comment.
        unsafe { (*st).forget_last() };
        let t0 = crate::instrument::thread_time_ns();
        self.ins().merges.inc();
        let mut pairs_reduced = 0u64;

        // SAFETY: `st` is exclusively ours (see above); every `&mut` is
        // re-derived between `reduce_into` calls so user reduce code may
        // itself perform lookups through MMAP_TLS.
        unsafe {
            let left_count = (*st).current_views;
            if det.count <= left_count {
                // Sweep the smaller (right) set into the private maps.
                let mut total = left_count;
                for (pidx, public) in det.maps {
                    let pidx = pidx as usize;
                    (*st).ensure_page(pidx);
                    // Collect first: reduce calls must not overlap a
                    // borrow of the state.
                    let mut entries = Vec::new();
                    public.as_ref().drain(|idx, pair| entries.push((idx, pair)));
                    (*st).recycle_map(public);
                    for (idx, rpair) in entries {
                        let private = page_at(st, pidx);
                        let lpair = private.get(idx);
                        if lpair.is_null() {
                            private.insert(idx, rpair);
                            total += 1;
                        } else {
                            pairs_reduced += 1;
                            MonoidInstance::from_erased(rpair.monoid)
                                .reduce_into(lpair.view, rpair.view);
                        }
                    }
                }
                (*st).current_views = total;
            } else {
                // Sweep the smaller (left, private) set into the right
                // maps — keeping left as the serially-earlier operand —
                // then install the merged result back into the region.
                let mut right_maps = det.maps;
                let mut total = det.count;
                let npages = (*st).pages.len();
                for pidx in 0..npages {
                    let private = page_at(st, pidx);
                    if private.nvalid() == 0 {
                        continue;
                    }
                    let mut entries = Vec::new();
                    private.drain(|idx, pair| entries.push((idx, pair)));
                    // Find or create the public map for this page.
                    let pos = match right_maps.iter().position(|(p, _)| *p as usize == pidx) {
                        Some(pos) => pos,
                        None => {
                            let m = (*st).take_map();
                            right_maps.push((pidx as u32, m));
                            right_maps.len() - 1
                        }
                    };
                    for (idx, lpair) in entries {
                        let rmap = right_maps[pos].1.as_ref();
                        let rpair = rmap.get(idx);
                        if rpair.is_null() {
                            rmap.insert(idx, lpair);
                            total += 1;
                        } else {
                            pairs_reduced += 1;
                            rmap.remove(idx);
                            MonoidInstance::from_erased(lpair.monoid)
                                .reduce_into(lpair.view, rpair.view);
                            rmap.insert(idx, lpair);
                        }
                    }
                }
                (*st).current_views = 0;
                // Install the merged set as the current private views.
                for (pidx, public) in right_maps {
                    let pidx = pidx as usize;
                    (*st).ensure_page(pidx);
                    let private = page_at(st, pidx);
                    public.as_ref().drain(|idx, pair| {
                        private.insert(idx, pair);
                    });
                    (*st).recycle_map(public);
                }
                (*st).current_views = total;
            }
        }
        self.ins().merge_pairs.add(pairs_reduced);
        Instrument::add_merge_ns(&self.ins().merge_ns, t0);
    }

    fn collect_root(&self, state: &mut dyn Any) {
        let st: *mut MmapWorkerState = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        // SAFETY: exclusive access via the `&mut dyn Any` argument; the
        // fold callbacks run domain code, not user monoid code.
        unsafe {
            (*st).flush_lookups();
            (*st).forget_last();
            if (*st).current_views == 0 {
                return;
            }
            let mut entries: Vec<(usize, ViewPair)> = Vec::new();
            let npages = (*st).pages.len();
            for pidx in 0..npages {
                let private = page_at(st, pidx);
                private.drain(|idx, pair| entries.push((pidx * VIEWS_PER_MAP + idx, pair)));
            }
            (*st).current_views = 0;
            for (slot, pair) in entries {
                // Lock-free handoff (DESIGN.md §13): fold inline when
                // the slot's serial word is free (one CAS, the common
                // case at a region boundary), else park the view on the
                // slot's pending-merge list and continue — the fold
                // then happens off the critical path (owner's next
                // serial touch or the idle-worker drain hook). Never
                // blocks either way.
                // SAFETY: `pair.view` is a live boxed view of this
                // slot's monoid and the reducer is still registered
                // (views must not outlive their reducer).
                self.domain.fold_or_park(slot as Slot, pair.view);
            }
        }
    }

    fn discard(&self, views: DetachedViews) {
        // Discard runs on a panic path, where the current context may
        // unwind without ever reaching a detach/collect; flush the
        // calling worker's hot-path lookup count here so the domain
        // totals stay exact even when one side of a join panics.
        let tls = MMAP_TLS.with(|c| c.get());
        if !tls.state.is_null() {
            // SAFETY: the TLS snapshot points at the calling worker's
            // live state; `flush_lookups` takes `&self` and only touches
            // the `Cell` counter and shared atomics.
            unsafe { (*tls.state).flush_lookups() };
        }
        let det = *views.downcast::<MmapDetached>().expect("mmap views");
        for (_, public) in det.maps {
            // SAFETY: each pair stores the erased address of the live
            // instance that created its view; drain drops each once.
            public.as_ref().drain(|_, pair| unsafe {
                MonoidInstance::from_erased(pair.monoid).drop_view(pair.view);
            });
            self.domain.recycle_public_maps([public]);
        }
    }

    fn drain_pending(&self) {
        self.domain.idle_drain();
    }

    fn suspend(&self, state: &mut dyn Any) -> DetachedViews {
        let st = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        st.flush_lookups();
        st.forget_last();
        // Set the private pages aside wholesale: the views stay on their
        // physical pages; only the mapping changes hands. The interim
        // context will map fresh pages lazily.
        let suspended = Box::new(MmapSuspended {
            descs: std::mem::take(&mut st.descs),
            pages: std::mem::take(&mut st.pages),
            views: std::mem::replace(&mut st.current_views, 0),
        });
        publish_tls(st as *mut MmapWorkerState);
        suspended
    }

    fn resume(&self, state: &mut dyn Any, views: DetachedViews) {
        let st = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        let saved = *views.downcast::<MmapSuspended>().expect("mmap suspended");
        debug_assert_eq!(st.current_views, 0, "resume over non-empty context");
        st.forget_last();
        // Retire the interim context's pages: the preceding detach left
        // them empty and zeroed, so they are directly reusable.
        for (pd, page) in st.descs.drain(..).zip(st.pages.drain(..)) {
            debug_assert!(page.is_empty());
            st.free_pages.push((pd, page));
        }
        // One batched sys_pmap reinstates the suspended mapping — the
        // per-steal remapping cost §5 amortizes against steals.
        if !saved.descs.is_empty() {
            st.region.pmap(0, &saved.descs);
        }
        st.descs = saved.descs;
        st.pages = saved.pages;
        st.current_views = saved.views;
        publish_tls(st as *mut MmapWorkerState);
    }
}
