//! The memory-mapped reducer backend — the paper's contribution (§4–§7).
//!
//! Each worker owns a TLMM region (simulated by `cilkm-tlmm`) whose pages
//! hold **private SPA maps**: arrays of (view pointer, monoid pointer)
//! pairs indexed by the reducer's slot — the `tlmm_addr` of §6. The
//! moving parts:
//!
//! * **Thread-local indirection (§5)** — the region stores only pointers;
//!   views live on the shared heap, so hypermerges need no remapping and
//!   no pointer swizzling, and the region itself needs only a trivial
//!   fixed-size-slot allocator (the domain's slot allocator).
//! * **Lookup (§6)** — resolve the slot's private SPA element and test
//!   the view pointer: a couple of loads and one predictable branch. A
//!   miss (at most once per reducer per steal) lazily creates an identity
//!   view and inserts it: one pointer-pair write plus a log append.
//! * **View transferal by copying (§7)** — a terminating context copies
//!   its private pairs into **public SPA maps** in shared memory, zeroing
//!   the private entries as it goes, so the worker returns to work-
//!   stealing with a provably empty private region. Public maps are
//!   page-sized, born zeroed, and recycled through per-worker pools with
//!   a global overflow pool, in the manner of Hoard.
//! * **View transferal by exchange (DESIGN.md §16)** — when a private
//!   page is dense enough (`nvalid() >= K`), detach hands the page
//!   itself off: the descriptor leaves the region and a zeroed
//!   replacement is swapped in with one scattered `sys_pmap`, making the
//!   dense case O(pages) instead of O(views). §5's indirection is what
//!   makes this sound with no pointer swizzling — the page holds only
//!   (view, monoid) pointer pairs into the shared heap, so it already
//!   *is* a valid public map. Sparse pages keep the §7 copy path, since
//!   a remap crossing can cost more than copying a couple of pairs.
//! * **Hypermerge (§7)** — sweep the view set with *fewer* views into the
//!   one with more, reducing pairs in serial order and zeroing the swept
//!   set, which is thereby recyclable.

use std::any::Any;
use std::cell::Cell;
use std::sync::Arc;

use cilkm_runtime::{DetachedViews, HyperHooks};
use cilkm_spa::{InsertOutcome, SpaMapBox, SpaMapRef, ViewPair, VIEWS_PER_MAP};
use cilkm_tlmm::{PageDesc, TlmmRegion};

use crate::domain::{DomainInner, Slot};
use crate::instrument::Instrument;
use crate::monoid::MonoidInstance;
use cilkm_obs::profile::Burden;

/// How many empty public SPA maps a worker caches locally before spilling
/// half to the domain's global pool.
const LOCAL_POOL_CAP: usize = 8;

/// How many empty, zeroed private pages a worker caches for remapping
/// before returning retirees to the arena.
const FREE_PAGES_CAP: usize = 32;

/// Per-worker state: the TLMM region, the private SPA maps living in it,
/// and the local recycle pool of public maps.
pub struct MmapWorkerState {
    domain: Arc<DomainInner>,
    region: TlmmRegion,
    /// Private SPA map accessors, one per mapped region page.
    pages: Vec<SpaMapRef>,
    /// Descriptors of the mapped pages (for cleanup).
    descs: Vec<PageDesc>,
    /// Empty, zeroed private pages ready for remapping (filled when a
    /// suspended context is resumed and the interim context's pages are
    /// retired).
    free_pages: Vec<(PageDesc, SpaMapRef)>,
    /// Local pool of empty public SPA maps.
    local_pool: Vec<SpaMapBox>,
    lookups: Cell<u64>,
    /// Single-entry cache of the last successful lookup. Keyed by
    /// (domain, page, idx) so a hit needs no map walk and no domain
    /// re-validation; every hook that can change the view owned by the
    /// current context (detach, attach, merge, suspend, resume, root
    /// collection, removal) must clear it — see [`MmapWorkerState::forget_last`].
    last: Cell<LastLookup>,
    /// Number of views currently in the private maps (drives the
    /// sweep-smaller choice during hypermerge).
    current_views: usize,
    /// Detach output buffer, recycled across transferals (attach donates
    /// the emptied vector back) so the hot detach path never allocates
    /// its map list.
    map_scratch: Vec<(u32, DetachedMap)>,
    /// Page indices queued for exchange during the current detach.
    swap_scratch: Vec<usize>,
    /// Replacement descriptors being gathered for an exchange batch.
    repl_scratch: Vec<PageDesc>,
    /// The scattered-pmap plan for the current exchange batch.
    pmap_scratch: Vec<(usize, PageDesc)>,
    /// Exchanged pages awaiting installation during attach/merge.
    attach_scratch: Vec<(usize, PageDesc, SpaMapRef)>,
}

/// The last-lookup cache line: the key identifies one reducer slot in one
/// domain; `view` is its resolved view pointer.
#[derive(Copy, Clone)]
struct LastLookup {
    domain: *const DomainInner,
    page: usize,
    idx: usize,
    view: *mut u8,
}

impl LastLookup {
    const EMPTY: LastLookup = LastLookup {
        domain: std::ptr::null(),
        page: usize::MAX,
        idx: usize::MAX,
        view: std::ptr::null_mut(),
    };
}

// SAFETY: the state is owned by exactly one worker at a time and handed
// between threads only while quiescent (it travels as
// `Box<dyn Any + Send>`); the raw pointers in the lookup cache are never
// dereferenced off-worker.
unsafe impl Send for MmapWorkerState {}

/// The thread-local fast-path descriptor: a snapshot of the worker's
/// private page table. Real Cilk-M needs none of this — the MMU *is* the
/// table — so the simulation keeps its stand-in as short as possible:
/// one TLS load yields the page array base, length, and owning domain.
#[derive(Copy, Clone)]
struct MmapTls {
    pages: *const SpaMapRef,
    len: usize,
    domain: *const DomainInner,
    state: *mut MmapWorkerState,
}

impl MmapTls {
    const NULL: MmapTls = MmapTls {
        pages: std::ptr::null(),
        len: 0,
        domain: std::ptr::null(),
        state: std::ptr::null_mut(),
    };
}

thread_local! {
    static MMAP_TLS: Cell<MmapTls> = const { Cell::new(MmapTls::NULL) };
}

/// Refreshes the TLS snapshot after any change to the page table.
fn publish_tls(state: *mut MmapWorkerState) {
    // SAFETY: callers pass their own live worker state; only the fields'
    // addresses are snapshotted, no long-lived reference escapes.
    unsafe {
        let st = &*state;
        MMAP_TLS.with(|c| {
            c.set(MmapTls {
                pages: st.pages.as_ptr(),
                len: st.pages.len(),
                domain: Arc::as_ptr(&st.domain),
                state,
            })
        });
    }
}

/// One page's worth of detached views: either a public SPA map the views
/// were copied into (§7's copying strategy), or the private page itself,
/// handed off wholesale by descriptor exchange.
enum DetachedMap {
    /// Views copied pair-by-pair into a recycled public map.
    Copied(SpaMapBox),
    /// The occupied private page, swapped out of the region: its arena
    /// descriptor (valid process-wide, §4) plus the accessor over it. No
    /// swizzling is needed to treat the page as a public map, because
    /// §5's indirection means it holds only (view, monoid) pointer pairs
    /// into the shared heap.
    Exchanged(PageDesc, SpaMapRef),
}

impl DetachedMap {
    /// Accessor over the carried map, whichever representation.
    fn as_map_ref(&self) -> SpaMapRef {
        match self {
            DetachedMap::Copied(b) => b.as_ref(),
            DetachedMap::Exchanged(_, r) => *r,
        }
    }
}

/// A detached view set: per-page copied or exchanged maps produced by
/// view transferal, tagged with the private page index each came from.
pub struct MmapDetached {
    maps: Vec<(u32, DetachedMap)>,
    count: usize,
}

/// A *suspended* context: the worker's private pages themselves, set
/// aside wholesale. Because SPA-map accessors point at the simulated
/// physical pages, the views never move — suspension is O(#pages)
/// pointer swaps and resumption is one batched `sys_pmap`, exactly the
/// "remapping amortized against steals" of §5. Never crosses workers.
struct MmapSuspended {
    descs: Vec<PageDesc>,
    pages: Vec<SpaMapRef>,
    views: usize,
}

// SAFETY: the suspended pages travel with their (quiescent) owning
// context exactly like `MmapWorkerState` itself.
unsafe impl Send for MmapSuspended {}

impl MmapDetached {
    /// Number of views carried.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl MmapWorkerState {
    fn flush_lookups(&self) {
        let n = self.lookups.take();
        if n != 0 {
            self.domain.instrument.lookups.add(n);
        }
    }

    /// Clears the last-lookup cache. Must run in every hook that changes
    /// which view the current context owns for any slot: a stale entry
    /// would silently resolve a lookup to a view that has been handed to
    /// another context (or folded away), breaking reducer semantics.
    fn forget_last(&self) {
        self.last.set(LastLookup::EMPTY);
    }

    /// Maps fresh zeroed pages so the private maps cover `page` (a
    /// simulated `sys_palloc` + one batched `sys_pmap`, amortized against
    /// steals as §5 argues).
    #[cold]
    fn ensure_page(&mut self, page: usize) {
        if page < self.pages.len() {
            return;
        }
        let first_new = self.pages.len();
        // Prefer recycled (empty, zeroed) pages over fresh allocations.
        let new_descs: Vec<PageDesc> = (first_new..=page)
            .map(|_| match self.free_pages.pop() {
                Some((pd, _)) => pd,
                None => self.region.arena().palloc(),
            })
            .collect();
        self.region.pmap(first_new, &new_descs);
        for (i, pd) in new_descs.into_iter().enumerate() {
            let base = self.region.arena().page_base(pd);
            debug_assert_eq!(base, self.region.page_base(first_new + i));
            // Fresh and recycled pages are zeroed: valid empty SPA maps.
            // SAFETY: `base` is the just-mapped arena page, zeroed (an
            // empty map layout) and private to this worker.
            self.pages.push(unsafe { SpaMapRef::from_raw(base) });
            self.descs.push(pd);
        }
        publish_tls(self as *mut MmapWorkerState);
    }

    fn take_map(&mut self) -> SpaMapBox {
        self.local_pool
            .pop()
            .unwrap_or_else(|| self.domain.take_public_map())
    }

    fn recycle_map(&mut self, map: SpaMapBox) {
        debug_assert!(map.as_ref().is_empty());
        if self.local_pool.len() < LOCAL_POOL_CAP {
            self.local_pool.push(map);
        } else {
            // Rebalance in the manner of Hoard: spill half the local pool.
            let spill = self.local_pool.split_off(LOCAL_POOL_CAP / 2);
            self.domain.recycle_public_maps(spill);
            self.domain.recycle_public_maps([map]);
        }
    }

    /// Copies out the accessor for mapped private page `pidx` (named so
    /// the lint-marked detach path needs no `[]` indexing).
    #[inline]
    fn page_ref(&self, pidx: usize) -> SpaMapRef {
        self.pages[pidx]
    }

    /// Retires an empty private page for reuse by `ensure_page` or the
    /// next exchange; frees it to the arena when the cache is full. The
    /// page may carry stale log entries (an insert/remove history never
    /// rewinds the log), so reset its counts — with every view slot
    /// null, that alone makes it a pristine empty map (footnote 6).
    fn retire_page(&mut self, pd: PageDesc, page: SpaMapRef) {
        debug_assert!(page.is_empty());
        page.clear_all();
        if self.free_pages.len() < FREE_PAGES_CAP {
            self.free_pages.push((pd, page));
        } else {
            self.region.arena().pfree(pd);
        }
    }

    /// Returns a consumed detached map to the recycling pools: copied
    /// maps go back to the public-map pool, exchanged pages to the
    /// private free-page cache (or the arena).
    fn dispose_detached_map(&mut self, map: DetachedMap) {
        match map {
            DetachedMap::Copied(b) => self.recycle_map(b),
            DetachedMap::Exchanged(pd, r) => self.retire_page(pd, r),
        }
    }

    /// Swaps every page queued in `swap_scratch` out of the region: each
    /// occupied descriptor leaves as [`DetachedMap::Exchanged`] and a
    /// zeroed replacement takes its place, with one batched `sys_palloc`
    /// for the cache misses (§4's batching argument) and one scattered
    /// `sys_pmap` for the whole set — O(pages), independent of how many
    /// views the pages carry. Returns the wall-clock ns of the window
    /// (charged as [`Burden::TransferalExchange`]).
    fn exchange_pages(&mut self, maps: &mut Vec<(u32, DetachedMap)>) -> u64 {
        let t0 = std::time::Instant::now();
        let need = self.swap_scratch.len();
        debug_assert!(need != 0);
        debug_assert!(self.repl_scratch.is_empty() && self.pmap_scratch.is_empty());
        // Replacements: drain the prewarmed cache first, then one batched
        // allocation for whatever is still missing.
        while self.repl_scratch.len() < need {
            match self.free_pages.pop() {
                Some((pd, page)) => {
                    debug_assert!(page.is_empty());
                    self.repl_scratch.push(pd);
                }
                None => break,
            }
        }
        let missing = need - self.repl_scratch.len();
        if missing != 0 {
            self.region
                .arena()
                .palloc_batch(missing, &mut self.repl_scratch);
        }
        for i in 0..need {
            let pidx = self.swap_scratch[i];
            let repl = self.repl_scratch[i];
            let old = std::mem::replace(&mut self.descs[pidx], repl);
            maps.push((pidx as u32, DetachedMap::Exchanged(old, self.pages[pidx])));
            self.pmap_scratch.push((pidx, repl));
        }
        // One scattered remap installs every replacement (one crossing).
        self.region.pmap_scatter(&self.pmap_scratch);
        for i in 0..need {
            let pidx = self.swap_scratch[i];
            let base = self.region.page_base(pidx);
            // SAFETY: a zeroed arena page was just mapped at `pidx` — a
            // valid empty SPA map private to this worker. The in-place
            // element write keeps the `pages` base address stable, so
            // the TLS snapshot needs no republish.
            self.pages[pidx] = unsafe { SpaMapRef::from_raw(base) };
        }
        self.domain
            .instrument
            .transferal_exchanged_pages
            .add(need as u64);
        self.swap_scratch.clear();
        self.repl_scratch.clear();
        self.pmap_scratch.clear();
        t0.elapsed().as_nanos() as u64
    }

    /// Maps descriptors returned by an exchange-based detach straight
    /// back into the region — the symmetric direction: instead of
    /// draining pair-by-pair, each returned page replaces the resident
    /// empty page, with one scattered `sys_pmap` for the whole set. The
    /// displaced empty pages are retired for reuse. Returns the
    /// wall-clock ns of the window.
    fn install_exchanged(&mut self) -> u64 {
        let t0 = std::time::Instant::now();
        debug_assert!(!self.attach_scratch.is_empty());
        debug_assert!(self.pmap_scratch.is_empty());
        let maxp = self
            .attach_scratch
            .iter()
            .map(|&(p, _, _)| p)
            .max()
            .expect("install_exchanged without a plan");
        self.ensure_page(maxp);
        for i in 0..self.attach_scratch.len() {
            let (pidx, pd, page) = self.attach_scratch[i];
            let old_pd = std::mem::replace(&mut self.descs[pidx], pd);
            let old_page = std::mem::replace(&mut self.pages[pidx], page);
            self.retire_page(old_pd, old_page);
            self.pmap_scratch.push((pidx, pd));
        }
        self.region.pmap_scatter(&self.pmap_scratch);
        #[cfg(debug_assertions)]
        for &(pidx, _, page) in &self.attach_scratch {
            debug_assert_eq!(
                self.region.page_base(pidx),
                page.slot_ptr(0) as *mut u8,
                "installed descriptor does not back its accessor"
            );
        }
        self.attach_scratch.clear();
        self.pmap_scratch.clear();
        t0.elapsed().as_nanos() as u64
    }

    /// Idle-time cache refill (the scheduler's `drain_pending` hook):
    /// tops up the private free-page cache with one batched allocation
    /// and the local public-map pool, so the next transferal finds its
    /// pages ready instead of allocating inside its latency window.
    fn prewarm(&mut self) {
        const FREE_PAGES_WATERMARK: usize = 8;
        const LOCAL_POOL_WATERMARK: usize = 4;
        if self.free_pages.len() < FREE_PAGES_WATERMARK {
            let need = FREE_PAGES_WATERMARK - self.free_pages.len();
            debug_assert!(self.repl_scratch.is_empty());
            self.region
                .arena()
                .palloc_batch(need, &mut self.repl_scratch);
            for pd in self.repl_scratch.drain(..) {
                let base = self.region.arena().page_base(pd);
                // SAFETY: a fresh zeroed arena page — a valid empty SPA
                // map — not mapped anywhere yet.
                self.free_pages
                    .push((pd, unsafe { SpaMapRef::from_raw(base) }));
            }
        }
        while self.local_pool.len() < LOCAL_POOL_WATERMARK {
            let map = self.domain.take_public_map();
            self.local_pool.push(map);
        }
    }
}

impl Drop for MmapWorkerState {
    fn drop(&mut self) {
        self.flush_lookups();
        MMAP_TLS.with(|c| c.set(MmapTls::NULL));
        // Destroy any leftover views (possible after a panicked region).
        for page in &self.pages {
            // SAFETY: surviving pairs store the erased address of the
            // live instance that created their views; drain visits each
            // exactly once.
            page.drain(|_, pair| unsafe {
                MonoidInstance::from_erased(pair.monoid).drop_view(pair.view);
            });
        }
        for pd in self.descs.drain(..) {
            self.region.arena().pfree(pd);
        }
        for (pd, _) in self.free_pages.drain(..) {
            self.region.arena().pfree(pd);
        }
    }
}

/// Copies out the `SpaMapRef` accessor for private page `pidx` through a
/// raw state pointer, with an explicit short-lived borrow (the borrow ends
/// before any user code can run).
///
/// # Safety
///
/// `st` must point to a live `MmapWorkerState` on the current thread and
/// `pidx` must be a mapped page index.
#[inline]
unsafe fn page_at(st: *mut MmapWorkerState, pidx: usize) -> SpaMapRef {
    (&(*st).pages)[pidx]
}

/// The memory-mapped reducer lookup (§6): on the hit path, either a
/// single-entry cache hit (three compares against the last lookup) or
/// the paper's two loads and a predictable branch through the private
/// SPA map, with no counter traffic in plain release builds.
///
/// Returns `None` when the calling thread is not a worker of `domain`'s
/// pool (the caller then takes the serial leftmost path).
// lint: hot-path
#[inline(always)]
pub(crate) fn lookup(
    page: usize,
    idx: usize,
    inst: &MonoidInstance,
    domain: &DomainInner,
) -> Option<*mut u8> {
    let tls = MMAP_TLS.with(|c| c.get());
    if tls.state.is_null() {
        return None;
    }
    // SAFETY: the TLS snapshot points at this worker's live state and
    // page array; only shared reads happen on the fast path, and the
    // slot pointer dereference stays inside the mapped SPA page.
    unsafe {
        let st = &*tls.state;
        if crate::instrument::COUNT_LOOKUPS {
            st.lookups.set(st.lookups.get() + 1);
        }
        // Same reducer as last time? The cache key includes the domain,
        // so a hit needs no separate pool-membership check.
        let last = st.last.get();
        if last.page == page && last.idx == idx && std::ptr::eq(last.domain, domain) {
            return Some(last.view);
        }
        assert!(
            std::ptr::eq(tls.domain, domain),
            "reducer used on a worker of a different pool"
        );
        if page < tls.len {
            // The fast path the paper counts: dereference the slot's
            // private SPA element and test the view pointer. This read
            // bypasses the SpaMapRef accessors, so record it for the
            // model checker / sanitizer explicitly (same whole-map
            // granularity). Plain builds keep the path emit-free.
            let map = *tls.pages.add(page);
            #[cfg(feature = "model")]
            cilkm_checker::trace::note_read(map.slot_ptr(0) as usize, "SpaMap");
            #[cfg(all(not(feature = "model"), feature = "sanitize"))]
            cilkm_san::shadow_read(map.slot_ptr(0) as usize, "SpaMap");
            let view = (*map.slot_ptr(idx)).view;
            if !view.is_null() {
                st.last.set(LastLookup {
                    domain,
                    page,
                    idx,
                    view,
                });
                return Some(view);
            }
        }
    }
    lookup_miss(page, idx, inst, domain, tls.state)
}

/// The outlined miss path: creates and inserts an identity view. Happens
/// at most once per reducer per steal (§6), so it stays out of line to
/// keep the hit path small enough to inline everywhere.
#[cold]
#[inline(never)]
fn lookup_miss(
    page: usize,
    idx: usize,
    inst: &MonoidInstance,
    domain: &DomainInner,
    ptr: *mut MmapWorkerState,
) -> Option<*mut u8> {
    // SAFETY: `ptr` is the caller's live TLS state; `&mut`s are
    // re-derived around the user `identity()` call, never held across
    // it.
    unsafe {
        (*ptr).ensure_page(page);

        let t0 = std::time::Instant::now();
        let view = inst.identity();
        domain.instrument.view_creations.inc();
        Instrument::add_short_ns(
            &domain.instrument.view_creation_ns,
            t0,
            Burden::ViewCreation,
        );

        let t1 = std::time::Instant::now();
        let outcome = page_at(ptr, page).insert(
            idx,
            ViewPair {
                view,
                monoid: inst.as_erased(),
            },
        );
        if outcome == InsertOutcome::Overflowed {
            domain.instrument.log_overflows.inc();
        }
        (*ptr).current_views += 1;
        domain.instrument.view_insertions.inc();
        Instrument::add_short_ns(
            &domain.instrument.view_insertion_ns,
            t1,
            Burden::ViewInsertion,
        );
        (*ptr).last.set(LastLookup {
            domain,
            page,
            idx,
            view,
        });
        Some(view)
    }
}

/// Removes (and returns) the current context's view for `slot`, if any.
pub(crate) fn remove_current(slot: Slot, domain: &DomainInner) -> Option<*mut u8> {
    let tls = MMAP_TLS.with(|c| c.get());
    if tls.state.is_null() {
        return None;
    }
    let page = slot as usize / VIEWS_PER_MAP;
    let idx = slot as usize % VIEWS_PER_MAP;
    // SAFETY: thread-local state of the calling worker; no user code
    // runs inside the block, so the `&mut` cannot alias.
    unsafe {
        let st = &mut *tls.state;
        assert!(std::ptr::eq(Arc::as_ptr(&st.domain), domain));
        st.forget_last();
        if page < st.pages.len() && !st.pages[page].get(idx).is_null() {
            let pair = st.pages[page].remove(idx);
            st.current_views -= 1;
            Some(pair.view)
        } else {
            None
        }
    }
}

/// The memory-mapped implementation of the scheduler hooks.
pub struct MmapHooks {
    domain: Arc<DomainInner>,
}

impl MmapHooks {
    /// Hooks for `domain`.
    pub fn new(domain: Arc<DomainInner>) -> MmapHooks {
        MmapHooks { domain }
    }

    fn ins(&self) -> &Instrument {
        &self.domain.instrument
    }
}

impl HyperHooks for MmapHooks {
    fn make_worker_state(&self, _index: usize) -> Box<dyn Any + Send> {
        let state = Box::new(MmapWorkerState {
            domain: Arc::clone(&self.domain),
            region: TlmmRegion::new(Arc::clone(&self.domain.arena)),
            pages: Vec::new(),
            descs: Vec::new(),
            free_pages: Vec::new(),
            local_pool: Vec::new(),
            lookups: Cell::new(0),
            last: Cell::new(LastLookup::EMPTY),
            current_views: 0,
            map_scratch: Vec::new(),
            swap_scratch: Vec::new(),
            repl_scratch: Vec::new(),
            pmap_scratch: Vec::new(),
            attach_scratch: Vec::new(),
        });
        let raw = &*state as *const MmapWorkerState as *mut MmapWorkerState;
        publish_tls(raw);
        state
    }

    // lint: hot-path
    fn detach(&self, state: &mut dyn Any) -> DetachedViews {
        let st = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        st.flush_lookups();
        st.forget_last();
        let t0 = Instrument::transferal_timer();
        let mut maps = std::mem::take(&mut st.map_scratch);
        debug_assert!(maps.is_empty() && st.swap_scratch.is_empty());
        let mut count = 0usize;
        let mut copied = 0u64;
        let mut exchange_ns = 0u64;
        if st.current_views != 0 {
            // Pass 1: sparse pages take §7's copy path (as one bulk,
            // log-carrying move); dense pages are queued for exchange.
            let threshold = st.domain.exchange_threshold();
            let npages = st.pages.len();
            for pidx in 0..npages {
                let private = st.page_ref(pidx);
                let nv = private.nvalid();
                if nv == 0 {
                    continue;
                }
                count += nv;
                if nv >= threshold {
                    st.swap_scratch.push(pidx);
                } else {
                    let public = st.take_map();
                    private.drain_into(public.as_ref());
                    copied += nv as u64;
                    maps.push((pidx as u32, DetachedMap::Copied(public)));
                }
            }
            // Pass 2: swap every queued page out of the region and a
            // zeroed replacement in — one batched allocation plus one
            // scattered remap for the whole batch.
            if !st.swap_scratch.is_empty() {
                exchange_ns = st.exchange_pages(&mut maps);
            }
            st.current_views = 0;
        }
        if count != 0 {
            self.ins().transferals.inc();
            self.ins().transferal_views.add(count as u64);
            self.ins().transferal_copied_views.add(copied);
        }
        self.ins().finish_transferal_split(t0, exchange_ns);
        // lint: allow(hot-path, one boxed handoff of the whole detached set to the scheduler; the per-view and per-page work above is allocation-free)
        Box::new(MmapDetached { maps, count })
    }

    fn attach(&self, state: &mut dyn Any, views: DetachedViews) {
        let st = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        let mut det = *views.downcast::<MmapDetached>().expect("mmap views");
        debug_assert_eq!(st.current_views, 0, "attach over non-empty context");
        st.forget_last();
        let t0 = Instrument::transferal_timer();
        debug_assert!(st.attach_scratch.is_empty());
        for (pidx, map) in det.maps.drain(..) {
            let pidx = pidx as usize;
            match map {
                DetachedMap::Copied(public) => {
                    // §7: drain the public map back into the region.
                    st.ensure_page(pidx);
                    public.as_ref().drain_into(st.page_ref(pidx));
                    st.recycle_map(public);
                }
                DetachedMap::Exchanged(pd, page) => st.attach_scratch.push((pidx, pd, page)),
            }
        }
        let mut exchange_ns = 0u64;
        if !st.attach_scratch.is_empty() {
            exchange_ns = st.install_exchanged();
        }
        st.current_views = det.count;
        // Donate the emptied buffer back so this worker's next detach
        // allocates nothing for its map list.
        if det.maps.capacity() > st.map_scratch.capacity() {
            st.map_scratch = det.maps;
        }
        self.ins().finish_transferal_split(t0, exchange_ns);
    }

    fn merge_right(&self, state: &mut dyn Any, right: DetachedViews) {
        // Raw-pointer discipline: monoid reduce operations are user code
        // and may perform reducer lookups through MMAP_TLS; no `&mut` to
        // the state may be live across them.
        let st: *mut MmapWorkerState = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        let det = *right.downcast::<MmapDetached>().expect("mmap views");
        // SAFETY: `st` came from the exclusive `&mut dyn Any` above; the
        // raw-pointer hop only shortens the borrow, per the comment.
        unsafe { (*st).forget_last() };
        let t0 = crate::instrument::thread_time_ns();
        self.ins().merges.inc();
        let mut pairs_reduced = 0u64;

        // SAFETY: `st` is exclusively ours (see above); every `&mut` is
        // re-derived between `reduce_into` calls so user reduce code may
        // itself perform lookups through MMAP_TLS.
        unsafe {
            let left_count = (*st).current_views;
            if det.count <= left_count {
                // Sweep the smaller (right) set into the private maps.
                let mut total = left_count;
                for (pidx, map) in det.maps {
                    let pidx = pidx as usize;
                    (*st).ensure_page(pidx);
                    // Collect first: reduce calls must not overlap a
                    // borrow of the state.
                    let mut entries = Vec::new();
                    map.as_map_ref()
                        .drain(|idx, pair| entries.push((idx, pair)));
                    (*st).dispose_detached_map(map);
                    for (idx, rpair) in entries {
                        let private = page_at(st, pidx);
                        let lpair = private.get(idx);
                        if lpair.is_null() {
                            private.insert(idx, rpair);
                            total += 1;
                        } else {
                            pairs_reduced += 1;
                            MonoidInstance::from_erased(rpair.monoid)
                                .reduce_into(lpair.view, rpair.view);
                        }
                    }
                }
                (*st).current_views = total;
            } else {
                // Sweep the smaller (left, private) set into the right
                // maps — keeping left as the serially-earlier operand —
                // then install the merged result back into the region.
                let mut right_maps = det.maps;
                let mut total = det.count;
                let npages = (*st).pages.len();
                for pidx in 0..npages {
                    let private = page_at(st, pidx);
                    if private.nvalid() == 0 {
                        continue;
                    }
                    let mut entries = Vec::new();
                    private.drain(|idx, pair| entries.push((idx, pair)));
                    // Find or create the right-hand map for this page.
                    let pos = match right_maps.iter().position(|(p, _)| *p as usize == pidx) {
                        Some(pos) => pos,
                        None => {
                            let m = (*st).take_map();
                            right_maps.push((pidx as u32, DetachedMap::Copied(m)));
                            right_maps.len() - 1
                        }
                    };
                    for (idx, lpair) in entries {
                        let rmap = right_maps[pos].1.as_map_ref();
                        let rpair = rmap.get(idx);
                        if rpair.is_null() {
                            rmap.insert(idx, lpair);
                            total += 1;
                        } else {
                            pairs_reduced += 1;
                            rmap.remove(idx);
                            MonoidInstance::from_erased(lpair.monoid)
                                .reduce_into(lpair.view, rpair.view);
                            rmap.insert(idx, lpair);
                        }
                    }
                }
                (*st).current_views = 0;
                // Install the merged set as the current private views:
                // copied maps drain back into (empty) region pages;
                // exchanged pages remap directly with one scattered
                // `sys_pmap`, exactly as in attach.
                debug_assert!((*st).attach_scratch.is_empty());
                for (pidx, map) in right_maps {
                    let pidx = pidx as usize;
                    match map {
                        DetachedMap::Copied(public) => {
                            (*st).ensure_page(pidx);
                            let private = page_at(st, pidx);
                            public.as_ref().drain_into(private);
                            (*st).recycle_map(public);
                        }
                        DetachedMap::Exchanged(pd, page) => {
                            (*st).attach_scratch.push((pidx, pd, page));
                        }
                    }
                }
                if !(*st).attach_scratch.is_empty() {
                    (*st).install_exchanged();
                }
                (*st).current_views = total;
            }
        }
        self.ins().merge_pairs.add(pairs_reduced);
        Instrument::add_merge_ns(&self.ins().merge_ns, t0);
    }

    fn collect_root(&self, state: &mut dyn Any) {
        let st: *mut MmapWorkerState = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        // SAFETY: exclusive access via the `&mut dyn Any` argument; the
        // fold callbacks run domain code, not user monoid code.
        unsafe {
            (*st).flush_lookups();
            (*st).forget_last();
            if (*st).current_views == 0 {
                return;
            }
            let mut entries: Vec<(usize, ViewPair)> = Vec::new();
            let npages = (*st).pages.len();
            for pidx in 0..npages {
                let private = page_at(st, pidx);
                private.drain(|idx, pair| entries.push((pidx * VIEWS_PER_MAP + idx, pair)));
            }
            (*st).current_views = 0;
            for (slot, pair) in entries {
                // Lock-free handoff (DESIGN.md §13): fold inline when
                // the slot's serial word is free (one CAS, the common
                // case at a region boundary), else park the view on the
                // slot's pending-merge list and continue — the fold
                // then happens off the critical path (owner's next
                // serial touch or the idle-worker drain hook). Never
                // blocks either way.
                // SAFETY: `pair.view` is a live boxed view of this
                // slot's monoid and the reducer is still registered
                // (views must not outlive their reducer).
                self.domain.fold_or_park(slot as Slot, pair.view);
            }
        }
    }

    fn discard(&self, views: DetachedViews) {
        // Discard runs on a panic path, where the current context may
        // unwind without ever reaching a detach/collect; flush the
        // calling worker's hot-path lookup count here so the domain
        // totals stay exact even when one side of a join panics.
        let tls = MMAP_TLS.with(|c| c.get());
        if !tls.state.is_null() {
            // SAFETY: the TLS snapshot points at the calling worker's
            // live state; `flush_lookups` takes `&self` and only touches
            // the `Cell` counter and shared atomics.
            unsafe { (*tls.state).flush_lookups() };
        }
        let det = *views.downcast::<MmapDetached>().expect("mmap views");
        for (_, map) in det.maps {
            let r = map.as_map_ref();
            // SAFETY: each pair stores the erased address of the live
            // instance that created its view; drain drops each once.
            r.drain(|_, pair| unsafe {
                MonoidInstance::from_erased(pair.monoid).drop_view(pair.view);
            });
            match map {
                DetachedMap::Copied(public) => self.domain.recycle_public_maps([public]),
                // Discard can run on a non-worker thread (panic paths),
                // so exchanged pages go straight back to the arena.
                DetachedMap::Exchanged(pd, _) => self.domain.arena.pfree(pd),
            }
        }
    }

    fn drain_pending(&self) {
        // Idle episode: prewarm the calling worker's page and map caches
        // so the next transferal pays no allocation inside its latency
        // window (the p99 tail tracks palloc and pool misses on the
        // detach path).
        let tls = MMAP_TLS.with(|c| c.get());
        if !tls.state.is_null() && std::ptr::eq(tls.domain, Arc::as_ptr(&self.domain)) {
            // SAFETY: the TLS snapshot points at the calling (idle)
            // worker's live state; the `&mut` ends before `idle_drain`
            // below runs user monoid code.
            unsafe { (*tls.state).prewarm() };
        }
        self.domain.idle_drain();
    }

    fn suspend(&self, state: &mut dyn Any) -> DetachedViews {
        let st = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        st.flush_lookups();
        st.forget_last();
        // Set the private pages aside wholesale: the views stay on their
        // physical pages; only the mapping changes hands. The interim
        // context will map fresh pages lazily.
        let suspended = Box::new(MmapSuspended {
            descs: std::mem::take(&mut st.descs),
            pages: std::mem::take(&mut st.pages),
            views: std::mem::replace(&mut st.current_views, 0),
        });
        publish_tls(st as *mut MmapWorkerState);
        suspended
    }

    fn resume(&self, state: &mut dyn Any, views: DetachedViews) {
        let st = state.downcast_mut::<MmapWorkerState>().expect("mmap state");
        let saved = *views.downcast::<MmapSuspended>().expect("mmap suspended");
        debug_assert_eq!(st.current_views, 0, "resume over non-empty context");
        st.forget_last();
        // Retire the interim context's pages: the preceding detach left
        // them empty, so they are directly reusable.
        let interim: Vec<(PageDesc, SpaMapRef)> =
            st.descs.drain(..).zip(st.pages.drain(..)).collect();
        for (pd, page) in interim {
            st.retire_page(pd, page);
        }
        // One batched sys_pmap reinstates the suspended mapping — the
        // per-steal remapping cost §5 amortizes against steals.
        if !saved.descs.is_empty() {
            st.region.pmap(0, &saved.descs);
        }
        st.descs = saved.descs;
        st.pages = saved.pages;
        st.current_views = saved.views;
        publish_tls(st as *mut MmapWorkerState);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Backend;
    use crate::monoid::Monoid;
    // lint: allow(raw-sync, test-observation drop counters shared with plain std::thread spawns; msync's recorded atomics are scoped to one model run and these tests run outside the checker — same policy as cilkm-core::reclaim's DROPS static)
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    /// A monoid whose views count their own drops, so the tests can
    /// assert every view created by a lookup is destroyed exactly once
    /// whichever transferal representation carried it.
    struct CountingMonoid {
        drops: Arc<AtomicUsize>,
    }

    struct CountedView {
        drops: Arc<AtomicUsize>,
    }

    impl Drop for CountedView {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    impl Monoid for CountingMonoid {
        type View = CountedView;
        fn identity(&self) -> CountedView {
            CountedView {
                drops: Arc::clone(&self.drops),
            }
        }
        fn reduce(&self, _left: &mut CountedView, _right: CountedView) {}
    }

    /// The PR 3 "500 + 300" exactness scenario replayed over the
    /// *exchange* path: the thief's detached page crosses by descriptor,
    /// the thief then panics, and the scheduler discards the detached
    /// set. Counts must stay exact (800 lookups, 1 exchanged page, 0
    /// copied views), every view must drop exactly once, and no arena
    /// page may leak.
    #[test]
    fn panic_after_exchange_detach_keeps_counts_exact_and_leaks_nothing() {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        // Force the thief's single-view page onto the exchange path.
        domain.set_exchange_threshold(1);
        let drops = Arc::new(AtomicUsize::new(0));
        let monoid = Arc::new(CountingMonoid {
            drops: Arc::clone(&drops),
        });
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let hooks = MmapHooks::new(Arc::clone(&domain));
        let (tx, rx) = mpsc::channel();

        let (d2, m2, i2) = (Arc::clone(&domain), Arc::clone(&monoid), Arc::clone(&inst));
        let thief = std::thread::spawn(move || {
            let _keep_alive = m2;
            let hooks = MmapHooks::new(Arc::clone(&d2));
            let mut state = hooks.make_worker_state(1);
            for _ in 0..300 {
                lookup(0, 3, &i2, &d2).expect("thief worker state");
            }
            let det = hooks.detach(state.as_mut());
            tx.send(det).unwrap();
            panic!("simulated unwind on the stolen branch");
        });

        let state = hooks.make_worker_state(0);
        for _ in 0..500 {
            lookup(0, 3, &inst, &domain).expect("owner worker state");
        }
        let det = rx.recv().unwrap();
        assert!(thief.join().is_err(), "the thief must have panicked");

        // What the scheduler does when the stolen branch unwinds: the
        // in-flight detached views are discarded, never merged.
        hooks.discard(det);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "discard drops the exchanged page's view exactly once"
        );

        let snap = domain.instrument();
        assert_eq!(snap.lookups, 800, "500 owner + 300 thief, exactly");
        assert_eq!(snap.view_creations, 2);
        assert_eq!(snap.transferals, 1);
        assert_eq!(snap.transferal_views, 1);
        assert_eq!(snap.transferal_exchanged_pages, 1, "exchange path taken");
        assert_eq!(snap.transferal_copied_views, 0, "no per-view copying");

        drop(state);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            2,
            "the owner's view drops exactly once with its state"
        );
        assert_eq!(
            domain.arena.live_pages(),
            0,
            "exchanged + replacement pages all returned to the arena"
        );
    }

    /// Dense pages exchange, sparse pages copy, and both kinds land back
    /// via `attach` — including the log-overflow representation, which
    /// must survive an exchange intact.
    #[test]
    fn mixed_exchange_and_copy_roundtrip_through_attach() {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        domain.set_exchange_threshold(4);
        let drops = Arc::new(AtomicUsize::new(0));
        let monoid = Arc::new(CountingMonoid {
            drops: Arc::clone(&drops),
        });
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let hooks = MmapHooks::new(Arc::clone(&domain));

        // Page 0: 6 views (dense -> exchange); page 1: 2 views (sparse
        // -> copy).
        let slots: &[(usize, usize)] = &[
            (0, 0),
            (0, 1),
            (0, 2),
            (0, 100),
            (0, 200),
            (0, 247),
            (1, 5),
            (1, 6),
        ];
        let (det, views) = {
            let mut state = hooks.make_worker_state(0);
            for &(page, idx) in slots {
                lookup(page, idx, &inst, &domain).expect("worker state");
            }
            let det = hooks.detach(state.as_mut());
            (det, slots.len())
            // `state` drops here (its region is empty after detach).
        };
        let snap = domain.instrument();
        assert_eq!(snap.transferal_views as usize, views);
        assert_eq!(snap.transferal_exchanged_pages, 1, "page 0 exchanged");
        assert_eq!(snap.transferal_copied_views, 2, "page 1 copied");

        let mut state = hooks.make_worker_state(1);
        hooks.attach(state.as_mut(), det);
        for &(page, idx) in slots {
            // Attach must have installed every view: a lookup hit, not a
            // fresh identity creation.
            lookup(page, idx, &inst, &domain).expect("worker state");
        }
        assert_eq!(
            domain.instrument().view_creations as usize,
            views,
            "post-attach lookups hit the carried views, creating none"
        );
        drop(state);
        assert_eq!(drops.load(Ordering::SeqCst), views, "each view drops once");
        assert_eq!(domain.arena.live_pages(), 0);
    }
}

#[cfg(all(test, not(miri)))]
mod proptests {
    use super::*;
    use crate::domain::Backend;
    use crate::library::SumMonoid;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// Runs one full transferal at `threshold`: create the `views` in a
    /// worker context, detach, attach into a *fresh* context, and read
    /// every slot back. Returns the observed (slot -> value) table.
    fn transfer_roundtrip(
        views: &BTreeMap<(usize, usize), u64>,
        threshold: usize,
    ) -> BTreeMap<(usize, usize), u64> {
        let domain = Arc::new(DomainInner::new(Backend::Mmap));
        domain.set_exchange_threshold(threshold);
        let monoid = Arc::new(SumMonoid::<u64>::new());
        let inst = Arc::new(MonoidInstance::new(&monoid));
        let hooks = MmapHooks::new(Arc::clone(&domain));

        let det = {
            let mut state = hooks.make_worker_state(0);
            for (&(page, idx), &v) in views {
                let view = lookup(page, idx, &inst, &domain).expect("worker state");
                // SAFETY: a live boxed u64 view owned by the current
                // context.
                unsafe { *(view as *mut u64) = v };
            }
            let det = hooks.detach(state.as_mut());
            assert!(
                state
                    .downcast_ref::<MmapWorkerState>()
                    .unwrap()
                    .pages
                    .iter()
                    .all(|p| p.is_empty()),
                "detach must leave the private region provably empty"
            );
            det
        };

        let mut state = hooks.make_worker_state(1);
        hooks.attach(state.as_mut(), det);
        let mut observed = BTreeMap::new();
        for &(page, idx) in views.keys() {
            let view = lookup(page, idx, &inst, &domain).expect("worker state");
            // SAFETY: as above; attach installed this slot's view.
            observed.insert((page, idx), unsafe { *(view as *mut u64) });
        }
        drop(state);
        assert_eq!(domain.arena.live_pages(), 0, "no leaked arena pages");
        observed
    }

    fn view_set_strategy() -> impl Strategy<Value = BTreeMap<(usize, usize), u64>> {
        proptest::collection::vec(
            ((0usize..4, 0usize..VIEWS_PER_MAP), 1u64..u32::MAX as u64),
            0..120,
        )
        .prop_map(|entries| entries.into_iter().collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Exchange-based and copy-based transferal are observationally
        /// identical: over random view sets and thresholds, a
        /// detach/attach roundtrip delivers exactly the model's values,
        /// whichever path each page takes (threshold `usize::MAX` is the
        /// pure §7 copy baseline; 1 is pure exchange).
        #[test]
        fn exchange_and_copy_transferal_agree(
            views in view_set_strategy(),
            threshold in prop_oneof![Just(1usize), 2usize..=16, Just(usize::MAX)],
        ) {
            let via_mixed = transfer_roundtrip(&views, threshold);
            let via_copy = transfer_roundtrip(&views, usize::MAX);
            prop_assert_eq!(&via_mixed, &views);
            prop_assert_eq!(&via_copy, &views);
        }
    }
}
