//! The monoid abstraction and its type-erased form.
//!
//! A reducer is defined in terms of an algebraic monoid `(T, ⊗, e)` (§2):
//! the runtime calls `IDENTITY` to create a fresh local view and `REDUCE`
//! to combine two views in serial order. Because the runtime data
//! structures (hypermaps and SPA maps) store views of *many different
//! reducer types* side by side, views travel type-erased: a view is a
//! `*mut u8` to a heap-allocated `M::View`, paired with a pointer to a
//! [`MonoidInstance`] whose vtable knows how to create, reduce, and
//! destroy views of that type. This mirrors the paper's SPA-map elements,
//! which are exactly a (view pointer, monoid pointer) pair (§6).

use std::sync::Arc;

/// An algebraic monoid: an associative binary operation with identity,
/// over view type [`Monoid::View`].
///
/// The reducer guarantee — the parallel result equals the serial result —
/// holds precisely when [`Monoid::reduce`] is associative and
/// [`Monoid::identity`] is its identity element. Nothing requires
/// commutativity: list append and string concatenation are supported and
/// are the interesting stress cases for the runtime's ordering discipline.
pub trait Monoid: Send + Sync + 'static {
    /// The view type local branches operate on.
    type View: Send + 'static;

    /// Creates the identity view `e` (called lazily on first access of a
    /// reducer by a freshly stolen execution context, §3/§6).
    fn identity(&self) -> Self::View;

    /// Reduces `left ⊗ right` into `left`, consuming `right`. `left` is
    /// the serially-earlier view.
    fn reduce(&self, left: &mut Self::View, right: Self::View);
}

/// The vtable of a type-erased monoid: how the runtime manipulates views
/// without knowing their type.
pub struct MonoidVTable {
    /// Creates a boxed identity view; `data` is the `&M`.
    pub identity: unsafe fn(data: *const ()) -> *mut u8,
    /// Reduces `left ⊗ right` into `left`, consuming and freeing `right`.
    pub reduce_into: unsafe fn(data: *const (), left: *mut u8, right: *mut u8),
    /// Destroys a view without reducing it (panic/discard paths).
    pub drop_view: unsafe fn(view: *mut u8),
}

unsafe fn identity_impl<M: Monoid>(data: *const ()) -> *mut u8 {
    let m = &*(data as *const M);
    Box::into_raw(Box::new(m.identity())) as *mut u8
}

unsafe fn reduce_into_impl<M: Monoid>(data: *const (), left: *mut u8, right: *mut u8) {
    let m = &*(data as *const M);
    let right = *Box::from_raw(right as *mut M::View);
    m.reduce(&mut *(left as *mut M::View), right);
}

unsafe fn drop_view_impl<M: Monoid>(view: *mut u8) {
    drop(Box::from_raw(view as *mut M::View));
}

/// The static vtable for a concrete monoid type.
pub fn vtable_for<M: Monoid>() -> &'static MonoidVTable {
    const {
        &MonoidVTable {
            identity: identity_impl::<M>,
            reduce_into: reduce_into_impl::<M>,
            drop_view: drop_view_impl::<M>,
        }
    }
}

/// A type-erased monoid instance: the object the SPA map's "monoid
/// pointer" points at (§6 stores it right next to the view pointer so the
/// hypermerge can invoke the reduce operation without any table lookups).
///
/// Lives inside a reducer and is kept alive by it; views in flight borrow
/// it for the duration of the parallel region, which the reducer is
/// required to outlive.
#[repr(C)]
pub struct MonoidInstance {
    vtable: &'static MonoidVTable,
    /// Points at the `M` owned (via `Arc`) by the reducer.
    data: *const (),
}

// SAFETY: `data` points at an `M` kept alive by the reducer's `Arc`
// (see `new`), and the vtable shims only ever form an `&M` from it, so
// the instance can move between threads.
unsafe impl Send for MonoidInstance {}
// SAFETY: all vtable shims take `data` as a shared `&M`, and `Monoid`
// methods take `&self`, so concurrent use from several threads performs
// only shared access to the monoid.
unsafe impl Sync for MonoidInstance {}

impl MonoidInstance {
    /// Builds an instance around a shared monoid. The caller must keep
    /// `monoid`'s `Arc` alive as long as this instance is reachable.
    pub fn new<M: Monoid>(monoid: &Arc<M>) -> MonoidInstance {
        MonoidInstance {
            vtable: vtable_for::<M>(),
            data: Arc::as_ptr(monoid) as *const (),
        }
    }

    /// Creates a boxed identity view.
    ///
    /// # Safety
    ///
    /// The backing monoid must still be alive.
    #[inline]
    pub unsafe fn identity(&self) -> *mut u8 {
        (self.vtable.identity)(self.data)
    }

    /// Reduces `left ⊗ right` into `left`, consuming `right`.
    ///
    /// # Safety
    ///
    /// Both pointers must be live boxed views of this monoid's view type,
    /// created by [`MonoidInstance::identity`] (or the reducer's initial
    /// boxing), and `right` must not be used afterwards.
    #[inline]
    pub unsafe fn reduce_into(&self, left: *mut u8, right: *mut u8) {
        (self.vtable.reduce_into)(self.data, left, right)
    }

    /// Destroys a view.
    ///
    /// # Safety
    ///
    /// `view` must be a live boxed view of this monoid's view type and
    /// must not be used afterwards.
    #[inline]
    pub unsafe fn drop_view(&self, view: *mut u8) {
        (self.vtable.drop_view)(view)
    }

    /// The erased pointer stored in SPA-map / hypermap entries.
    #[inline]
    pub fn as_erased(&self) -> *const u8 {
        self as *const MonoidInstance as *const u8
    }

    /// Recovers an instance reference from an erased entry pointer.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`MonoidInstance::as_erased`] of a live
    /// instance.
    #[inline]
    pub unsafe fn from_erased<'a>(ptr: *const u8) -> &'a MonoidInstance {
        &*(ptr as *const MonoidInstance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Concat;
    impl Monoid for Concat {
        type View = String;
        fn identity(&self) -> String {
            String::new()
        }
        fn reduce(&self, left: &mut String, right: String) {
            left.push_str(&right);
        }
    }

    #[test]
    fn erased_identity_reduce_drop_roundtrip() {
        let m = Arc::new(Concat);
        let inst = MonoidInstance::new(&m);
        // SAFETY: the views come from this instance's `identity` and are
        // consumed exactly once (`right` by reduce, `left` by drop).
        unsafe {
            let left = inst.identity();
            let right = inst.identity();
            *(left as *mut String) = "foo".to_string();
            *(right as *mut String) = "bar".to_string();
            inst.reduce_into(left, right);
            assert_eq!(&*(left as *mut String), "foobar");
            inst.drop_view(left);
        }
    }

    #[test]
    fn erased_pointer_round_trips() {
        let m = Arc::new(Concat);
        let inst = MonoidInstance::new(&m);
        let erased = inst.as_erased();
        // SAFETY: `erased` is the address of the still-live `inst`.
        let back = unsafe { MonoidInstance::from_erased(erased) };
        assert!(std::ptr::eq(back, &inst));
    }

    #[test]
    fn reduce_is_left_biased() {
        // reduce(left, right) must leave the result in `left`, with
        // `left` as the serially earlier operand.
        let m = Concat;
        let mut l = "a".to_string();
        m.reduce(&mut l, "b".to_string());
        assert_eq!(l, "ab");
    }
}
