//! The prepend list — Cilk Plus's `reducer_list_prepend`: elements are
//! pushed at the *front*, and the final list order is the reverse of the
//! serial push order (the serially-last push ends up first), which is
//! exactly what a serial sequence of `push_front` calls produces.

use std::collections::VecDeque;

use crate::monoid::Monoid;
use crate::reducer::Reducer;

/// Prepend-list monoid: `reduce(left, right)` places `right`'s elements
/// *in front of* `left`'s, because `right` is serially later and later
/// `push_front`s land further forward.
#[derive(Default)]
pub struct PrependListMonoid<T: Send + 'static> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Send + 'static> PrependListMonoid<T> {
    /// A prepend-list monoid.
    pub fn new() -> Self {
        PrependListMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + 'static> Monoid for PrependListMonoid<T> {
    type View = VecDeque<T>;

    fn identity(&self) -> VecDeque<T> {
        VecDeque::new()
    }

    fn reduce(&self, left: &mut VecDeque<T>, right: VecDeque<T>) {
        // right (serially later pushes) goes in front.
        let mut combined = right;
        combined.append(left);
        *left = combined;
    }
}

impl<T: Send + 'static> Reducer<PrependListMonoid<T>> {
    /// Pushes `x` at the front of the current view.
    #[inline]
    pub fn push_front(&self, x: T) {
        self.update(|v| v.push_front(x));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Backend, ReducerPool};
    use cilkm_runtime::parallel_for;

    #[test]
    fn reduce_places_later_views_in_front() {
        let m = PrependListMonoid::<u32>::new();
        let mut l: VecDeque<u32> = [3, 2, 1].into_iter().collect(); // pushes 1,2,3
        let r: VecDeque<u32> = [5, 4].into_iter().collect(); // pushes 4,5
        m.reduce(&mut l, r);
        // Serial pushes 1,2,3,4,5 front-to-back read 5,4,3,2,1.
        assert_eq!(l.into_iter().collect::<Vec<_>>(), vec![5, 4, 3, 2, 1]);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns OS worker threads")]
    fn parallel_prepend_equals_reversed_serial_order() {
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(4, backend);
            let list = crate::reducer::Reducer::new(
                &pool,
                PrependListMonoid::<u32>::new(),
                VecDeque::new(),
            );
            pool.run(|| {
                parallel_for(0..1000, 16, &|r| {
                    for i in r {
                        list.push_front(i as u32);
                    }
                });
            });
            let got: Vec<u32> = list.into_inner().into_iter().collect();
            let expect: Vec<u32> = (0..1000).rev().collect();
            assert_eq!(got, expect, "backend {backend:?}");
        }
    }
}
