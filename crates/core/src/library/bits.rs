//! Bitwise monoids — the `reducer_opand` / `reducer_opor` /
//! `reducer_opxor` family of the Cilk Plus reducer library.

use crate::monoid::Monoid;
use crate::reducer::Reducer;

/// Integer types usable with the bitwise monoids.
pub trait Bits: Send + Copy + 'static {
    /// All-zeros (identity of OR and XOR).
    const ZEROS: Self;
    /// All-ones (identity of AND).
    const ONES: Self;
    /// `*self &= rhs`.
    fn and_assign(&mut self, rhs: Self);
    /// `*self |= rhs`.
    fn or_assign(&mut self, rhs: Self);
    /// `*self ^= rhs`.
    fn xor_assign(&mut self, rhs: Self);
}

macro_rules! impl_bits {
    ($($t:ty),*) => {$(
        impl Bits for $t {
            const ZEROS: Self = 0;
            const ONES: Self = !0;
            #[inline]
            fn and_assign(&mut self, rhs: Self) {
                *self &= rhs;
            }
            #[inline]
            fn or_assign(&mut self, rhs: Self) {
                *self |= rhs;
            }
            #[inline]
            fn xor_assign(&mut self, rhs: Self) {
                *self ^= rhs;
            }
        }
    )*};
}

impl_bits!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// `(T, &, !0)` — bitwise AND.
#[derive(Default)]
pub struct BitAndMonoid<T: Bits> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Bits> BitAndMonoid<T> {
    /// A bitwise-AND monoid.
    pub fn new() -> Self {
        BitAndMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Bits> Monoid for BitAndMonoid<T> {
    type View = T;

    fn identity(&self) -> T {
        T::ONES
    }

    fn reduce(&self, left: &mut T, right: T) {
        left.and_assign(right);
    }
}

impl<T: Bits> Reducer<BitAndMonoid<T>> {
    /// ANDs `x` into the current view.
    #[inline]
    pub fn and(&self, x: T) {
        self.update(|v| v.and_assign(x));
    }
}

/// `(T, |, 0)` — bitwise OR.
#[derive(Default)]
pub struct BitOrMonoid<T: Bits> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Bits> BitOrMonoid<T> {
    /// A bitwise-OR monoid.
    pub fn new() -> Self {
        BitOrMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Bits> Monoid for BitOrMonoid<T> {
    type View = T;

    fn identity(&self) -> T {
        T::ZEROS
    }

    fn reduce(&self, left: &mut T, right: T) {
        left.or_assign(right);
    }
}

impl<T: Bits> Reducer<BitOrMonoid<T>> {
    /// ORs `x` into the current view.
    #[inline]
    pub fn or(&self, x: T) {
        self.update(|v| v.or_assign(x));
    }
}

/// `(T, ^, 0)` — bitwise XOR.
#[derive(Default)]
pub struct BitXorMonoid<T: Bits> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Bits> BitXorMonoid<T> {
    /// A bitwise-XOR monoid.
    pub fn new() -> Self {
        BitXorMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Bits> Monoid for BitXorMonoid<T> {
    type View = T;

    fn identity(&self) -> T {
        T::ZEROS
    }

    fn reduce(&self, left: &mut T, right: T) {
        left.xor_assign(right);
    }
}

impl<T: Bits> Reducer<BitXorMonoid<T>> {
    /// XORs `x` into the current view.
    #[inline]
    pub fn xor(&self, x: T) {
        self.update(|v| v.xor_assign(x));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Backend, ReducerPool};
    use cilkm_runtime::parallel_for;

    #[test]
    fn bit_monoid_laws() {
        let and = BitAndMonoid::<u8>::new();
        let mut v = and.identity();
        and.reduce(&mut v, 0b1100);
        and.reduce(&mut v, 0b1010);
        assert_eq!(v, 0b1000);

        let or = BitOrMonoid::<u8>::new();
        let mut v = or.identity();
        or.reduce(&mut v, 0b1100);
        or.reduce(&mut v, 0b0011);
        assert_eq!(v, 0b1111);

        let xor = BitXorMonoid::<u8>::new();
        let mut v = xor.identity();
        xor.reduce(&mut v, 0b1100);
        xor.reduce(&mut v, 0b1010);
        assert_eq!(v, 0b0110);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns OS worker threads")]
    fn parallel_xor_checksums_match_serial() {
        let values: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let expect = values.iter().fold(0u64, |a, b| a ^ b);
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(3, backend);
            let x = crate::reducer::Reducer::new(&pool, BitXorMonoid::<u64>::new(), 0);
            let o = crate::reducer::Reducer::new(&pool, BitOrMonoid::<u64>::new(), 0);
            let a = crate::reducer::Reducer::new(&pool, BitAndMonoid::<u64>::new(), !0);
            pool.run(|| {
                parallel_for(0..values.len(), 512, &|r| {
                    for i in r {
                        x.xor(values[i]);
                        o.or(values[i]);
                        a.and(values[i]);
                    }
                });
            });
            assert_eq!(x.into_inner(), expect);
            assert_eq!(o.into_inner(), values.iter().fold(0u64, |acc, b| acc | b));
            assert_eq!(a.into_inner(), values.iter().fold(!0u64, |acc, b| acc & b));
        }
    }
}
