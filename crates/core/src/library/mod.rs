//! The standard reducer library — the monoids the paper's benchmarks use
//! (§8: add, min, max; §2: list append) plus the other staples of the
//! Cilk Plus reducer library (logical and/or, string concatenation, a
//! holder, and a closure-built custom monoid).

mod bits;
mod index;
mod prepend;

pub use bits::{BitAndMonoid, BitOrMonoid, BitXorMonoid, Bits};
pub use index::{IndexedExtreme, MaxIndexMonoid, MinIndexMonoid};
pub use prepend::PrependListMonoid;

use crate::monoid::Monoid;
use crate::reducer::Reducer;

/// Numeric types usable with [`SumMonoid`].
pub trait Summable: Send + Copy + 'static {
    /// The additive identity.
    const ZERO: Self;
    /// `*self += rhs`.
    fn add_assign(&mut self, rhs: Self);
}

macro_rules! impl_summable {
    ($($t:ty),*) => {$(
        impl Summable for $t {
            const ZERO: Self = 0 as $t;
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self += rhs;
            }
        }
    )*};
}

impl_summable!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

/// `(T, +, 0)` — the `add-n` microbenchmark's monoid (Figure 4).
#[derive(Default)]
pub struct SumMonoid<T: Summable> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Summable> SumMonoid<T> {
    /// A sum monoid.
    pub fn new() -> SumMonoid<T> {
        SumMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Summable> Monoid for SumMonoid<T> {
    type View = T;

    fn identity(&self) -> T {
        T::ZERO
    }

    fn reduce(&self, left: &mut T, right: T) {
        left.add_assign(right);
    }
}

impl<T: Summable> Reducer<SumMonoid<T>> {
    /// Adds `x` into the current view.
    #[inline]
    pub fn add(&self, x: T) {
        self.update(|v| v.add_assign(x));
    }
}

/// `(Option<T>, min, None)` — the `min-n` microbenchmark's monoid. The
/// view carries an "is set" state exactly like the Cilk Plus
/// `reducer_min`, whose identity is the unset view.
#[derive(Default)]
pub struct MinMonoid<T: Ord + Send + Copy + 'static> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Ord + Send + Copy + 'static> MinMonoid<T> {
    /// A min monoid.
    pub fn new() -> MinMonoid<T> {
        MinMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Ord + Send + Copy + 'static> Monoid for MinMonoid<T> {
    type View = Option<T>;

    fn identity(&self) -> Option<T> {
        None
    }

    fn reduce(&self, left: &mut Option<T>, right: Option<T>) {
        if let Some(r) = right {
            match left {
                Some(l) if *l <= r => {}
                _ => *left = Some(r),
            }
        }
    }
}

impl<T: Ord + Send + Copy + 'static> Reducer<MinMonoid<T>> {
    /// Folds `x` into the running minimum.
    #[inline]
    pub fn observe(&self, x: T) {
        self.update(|v| match v {
            Some(cur) if *cur <= x => {}
            _ => *v = Some(x),
        });
    }
}

/// `(Option<T>, max, None)` — the `max-n` microbenchmark's monoid.
#[derive(Default)]
pub struct MaxMonoid<T: Ord + Send + Copy + 'static> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Ord + Send + Copy + 'static> MaxMonoid<T> {
    /// A max monoid.
    pub fn new() -> MaxMonoid<T> {
        MaxMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Ord + Send + Copy + 'static> Monoid for MaxMonoid<T> {
    type View = Option<T>;

    fn identity(&self) -> Option<T> {
        None
    }

    fn reduce(&self, left: &mut Option<T>, right: Option<T>) {
        if let Some(r) = right {
            match left {
                Some(l) if *l >= r => {}
                _ => *left = Some(r),
            }
        }
    }
}

impl<T: Ord + Send + Copy + 'static> Reducer<MaxMonoid<T>> {
    /// Folds `x` into the running maximum.
    #[inline]
    pub fn observe(&self, x: T) {
        self.update(|v| match v {
            Some(cur) if *cur >= x => {}
            _ => *v = Some(x),
        });
    }
}

/// `({true,false}, ∧, true)` — logical AND (§2's example monoid).
#[derive(Default)]
pub struct AndMonoid;

impl AndMonoid {
    /// A logical-AND monoid.
    pub fn new() -> AndMonoid {
        AndMonoid
    }
}

impl Monoid for AndMonoid {
    type View = bool;

    fn identity(&self) -> bool {
        true
    }

    fn reduce(&self, left: &mut bool, right: bool) {
        *left &= right;
    }
}

/// `({true,false}, ∨, false)` — logical OR.
#[derive(Default)]
pub struct OrMonoid;

impl OrMonoid {
    /// A logical-OR monoid.
    pub fn new() -> OrMonoid {
        OrMonoid
    }
}

impl Monoid for OrMonoid {
    type View = bool;

    fn identity(&self) -> bool {
        false
    }

    fn reduce(&self, left: &mut bool, right: bool) {
        *left |= right;
    }
}

/// List append with the empty list as identity — the reducer of the
/// paper's tree-walk example (Figure 2b). **Not commutative**: the final
/// list order equals the serial execution's, which is the property the
/// runtime's ordering discipline exists to provide.
#[derive(Default)]
pub struct ListMonoid<T: Send + 'static> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Send + 'static> ListMonoid<T> {
    /// A list-append monoid.
    pub fn new() -> ListMonoid<T> {
        ListMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + 'static> Monoid for ListMonoid<T> {
    type View = Vec<T>;

    fn identity(&self) -> Vec<T> {
        Vec::new()
    }

    fn reduce(&self, left: &mut Vec<T>, right: Vec<T>) {
        left.extend(right);
    }
}

impl<T: Send + 'static> Reducer<ListMonoid<T>> {
    /// Appends `x` to the current view — `l->push_back(n)` of Figure 2b.
    #[inline]
    pub fn push(&self, x: T) {
        self.update(|v| v.push(x));
    }
}

/// String concatenation with the empty string as identity. Also not
/// commutative; used by the ordering property tests.
#[derive(Default)]
pub struct StringMonoid;

impl StringMonoid {
    /// A string-concatenation monoid.
    pub fn new() -> StringMonoid {
        StringMonoid
    }
}

impl Monoid for StringMonoid {
    type View = String;

    fn identity(&self) -> String {
        String::new()
    }

    fn reduce(&self, left: &mut String, right: String) {
        left.push_str(&right);
    }
}

impl Reducer<StringMonoid> {
    /// Appends `s` to the current view.
    #[inline]
    pub fn append(&self, s: &str) {
        self.update(|v| v.push_str(s));
    }
}

/// A holder hyperobject: per-strand scratch space. Reduction keeps the
/// left view, so after a region the holder holds the serially-last
/// value written by the leftmost strand chain — Cilk++'s `holder` with
/// "keep last" semantics reduced to its monoid skeleton.
#[derive(Default)]
pub struct HolderMonoid<T: Send + Default + 'static> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Send + Default + 'static> HolderMonoid<T> {
    /// A holder monoid.
    pub fn new() -> HolderMonoid<T> {
        HolderMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + Default + 'static> Monoid for HolderMonoid<T> {
    type View = T;

    fn identity(&self) -> T {
        T::default()
    }

    fn reduce(&self, _left: &mut T, right: T) {
        drop(right);
    }
}

/// A monoid built from closures — for one-off custom reducers.
///
/// ```
/// use cilkm_core::{library::FnMonoid, Backend, Reducer, ReducerPool};
/// let pool = ReducerPool::new(2, Backend::Mmap);
/// // Tracks (count, sum) to average at the end.
/// let avg = Reducer::new(
///     &pool,
///     FnMonoid::new(
///         || (0u64, 0u64),
///         |l: &mut (u64, u64), r: (u64, u64)| {
///             l.0 += r.0;
///             l.1 += r.1;
///         },
///     ),
///     (0, 0),
/// );
/// pool.run(|| {
///     avg.update(|v| {
///         v.0 += 1;
///         v.1 += 10;
///     });
/// });
/// assert_eq!(avg.into_inner(), (1, 10));
/// ```
pub struct FnMonoid<V, I, R>
where
    V: Send + 'static,
    I: Fn() -> V + Send + Sync + 'static,
    R: Fn(&mut V, V) + Send + Sync + 'static,
{
    identity: I,
    reduce: R,
    _marker: std::marker::PhantomData<fn() -> V>,
}

impl<V, I, R> FnMonoid<V, I, R>
where
    V: Send + 'static,
    I: Fn() -> V + Send + Sync + 'static,
    R: Fn(&mut V, V) + Send + Sync + 'static,
{
    /// Builds a monoid from an identity constructor and a reduce closure.
    /// The reduce closure must be associative with `identity()` as its
    /// identity, or determinism is forfeit (as in Cilk).
    pub fn new(identity: I, reduce: R) -> Self {
        FnMonoid {
            identity,
            reduce,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<V, I, R> Monoid for FnMonoid<V, I, R>
where
    V: Send + 'static,
    I: Fn() -> V + Send + Sync + 'static,
    R: Fn(&mut V, V) + Send + Sync + 'static,
{
    type View = V;

    fn identity(&self) -> V {
        (self.identity)()
    }

    fn reduce(&self, left: &mut V, right: V) {
        (self.reduce)(left, right);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Backend, ReducerPool};
    use cilkm_runtime::parallel_for;

    #[test]
    fn sum_monoid_laws() {
        let m = SumMonoid::<i64>::new();
        let mut v = m.identity();
        m.reduce(&mut v, 5);
        m.reduce(&mut v, -2);
        assert_eq!(v, 3);
    }

    #[test]
    fn min_max_monoid_laws() {
        let min = MinMonoid::<u32>::new();
        let mut v = min.identity();
        min.reduce(&mut v, Some(9));
        min.reduce(&mut v, None);
        min.reduce(&mut v, Some(3));
        min.reduce(&mut v, Some(7));
        assert_eq!(v, Some(3));

        let max = MaxMonoid::<u32>::new();
        let mut v = max.identity();
        max.reduce(&mut v, Some(3));
        max.reduce(&mut v, Some(9));
        max.reduce(&mut v, Some(7));
        assert_eq!(v, Some(9));
    }

    #[test]
    fn logic_monoid_laws() {
        let and = AndMonoid::new();
        let mut v = and.identity();
        and.reduce(&mut v, true);
        assert!(v);
        and.reduce(&mut v, false);
        assert!(!v);

        let or = OrMonoid::new();
        let mut v = or.identity();
        or.reduce(&mut v, false);
        assert!(!v);
        or.reduce(&mut v, true);
        assert!(v);
    }

    #[test]
    fn list_append_keeps_order() {
        let m = ListMonoid::<u32>::new();
        let mut l = vec![1, 2];
        m.reduce(&mut l, vec![3, 4]);
        assert_eq!(l, vec![1, 2, 3, 4]);
    }

    #[test]
    fn holder_keeps_left() {
        let m = HolderMonoid::<u32>::new();
        let mut l = 5;
        m.reduce(&mut l, 9);
        assert_eq!(l, 5);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns OS worker threads")]
    fn parallel_min_max_find_extremes() {
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(2, backend);
            let values: Vec<u64> = (0..5000).map(|i| (i * 2654435761u64) % 100_000).collect();
            let min = Reducer::new(&pool, MinMonoid::new(), None);
            let max = Reducer::new(&pool, MaxMonoid::new(), None);
            pool.run(|| {
                parallel_for(0..values.len(), 64, &|r| {
                    for i in r {
                        min.observe(values[i]);
                        max.observe(values[i]);
                    }
                });
            });
            assert_eq!(min.into_inner(), values.iter().copied().min());
            assert_eq!(max.into_inner(), values.iter().copied().max());
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns OS worker threads")]
    fn parallel_list_append_is_serial_order() {
        // The non-commutative stress: result must equal serial order.
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(4, backend);
            let list = Reducer::new(&pool, ListMonoid::new(), Vec::new());
            pool.run(|| {
                parallel_for(0..2000, 16, &|r| {
                    for i in r {
                        list.push(i);
                    }
                });
            });
            let got = list.into_inner();
            let expect: Vec<usize> = (0..2000).collect();
            assert_eq!(got, expect, "backend {backend:?}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns OS worker threads")]
    fn parallel_string_concat_is_serial_order() {
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(4, backend);
            let s = Reducer::new(&pool, StringMonoid::new(), String::from("start:"));
            pool.run(|| {
                parallel_for(0..500, 8, &|r| {
                    for i in r {
                        s.append(&format!("{i},"));
                    }
                });
            });
            let got = s.into_inner();
            let mut expect = String::from("start:");
            for i in 0..500 {
                expect.push_str(&format!("{i},"));
            }
            assert_eq!(got, expect, "backend {backend:?}");
        }
    }
}
