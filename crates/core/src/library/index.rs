//! Argmin/argmax monoids — the `reducer_min_index` / `reducer_max_index`
//! family of the Cilk Plus reducer library: track the extreme value *and
//! where it occurred*, with serial tie-breaking (first occurrence wins,
//! exactly as a serial scan would decide).

use crate::monoid::Monoid;
use crate::reducer::Reducer;

/// The view of an index-tracking extreme: the best (index, value) so far.
pub type IndexedExtreme<I, T> = Option<(I, T)>;

/// Monoid tracking the minimum value and the (serially) first index
/// attaining it.
#[derive(Default)]
pub struct MinIndexMonoid<I: Send + Copy + 'static, T: Ord + Send + Copy + 'static> {
    _marker: std::marker::PhantomData<fn() -> (I, T)>,
}

impl<I: Send + Copy + 'static, T: Ord + Send + Copy + 'static> MinIndexMonoid<I, T> {
    /// A min-with-index monoid.
    pub fn new() -> Self {
        MinIndexMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I: Send + Copy + 'static, T: Ord + Send + Copy + 'static> Monoid for MinIndexMonoid<I, T> {
    type View = IndexedExtreme<I, T>;

    fn identity(&self) -> Self::View {
        None
    }

    fn reduce(&self, left: &mut Self::View, right: Self::View) {
        if let Some((ri, rv)) = right {
            match left {
                // Ties keep the left (serially earlier) occurrence.
                Some((_, lv)) if *lv <= rv => {}
                _ => *left = Some((ri, rv)),
            }
        }
    }
}

impl<I: Send + Copy + 'static, T: Ord + Send + Copy + 'static> Reducer<MinIndexMonoid<I, T>> {
    /// Folds observation `(index, value)` into the running minimum.
    #[inline]
    pub fn observe(&self, index: I, value: T) {
        self.update(|v| match v {
            Some((_, best)) if *best <= value => {}
            _ => *v = Some((index, value)),
        });
    }
}

/// Monoid tracking the maximum value and the (serially) first index
/// attaining it.
#[derive(Default)]
pub struct MaxIndexMonoid<I: Send + Copy + 'static, T: Ord + Send + Copy + 'static> {
    _marker: std::marker::PhantomData<fn() -> (I, T)>,
}

impl<I: Send + Copy + 'static, T: Ord + Send + Copy + 'static> MaxIndexMonoid<I, T> {
    /// A max-with-index monoid.
    pub fn new() -> Self {
        MaxIndexMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I: Send + Copy + 'static, T: Ord + Send + Copy + 'static> Monoid for MaxIndexMonoid<I, T> {
    type View = IndexedExtreme<I, T>;

    fn identity(&self) -> Self::View {
        None
    }

    fn reduce(&self, left: &mut Self::View, right: Self::View) {
        if let Some((ri, rv)) = right {
            match left {
                Some((_, lv)) if *lv >= rv => {}
                _ => *left = Some((ri, rv)),
            }
        }
    }
}

impl<I: Send + Copy + 'static, T: Ord + Send + Copy + 'static> Reducer<MaxIndexMonoid<I, T>> {
    /// Folds observation `(index, value)` into the running maximum.
    #[inline]
    pub fn observe(&self, index: I, value: T) {
        self.update(|v| match v {
            Some((_, best)) if *best >= value => {}
            _ => *v = Some((index, value)),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Backend, ReducerPool};
    use cilkm_runtime::parallel_for;

    #[test]
    fn min_index_keeps_first_occurrence_on_tie() {
        let m = MinIndexMonoid::<usize, u32>::new();
        let mut v = m.identity();
        m.reduce(&mut v, Some((5, 10)));
        m.reduce(&mut v, Some((9, 10))); // tie: keep index 5
        m.reduce(&mut v, Some((2, 7)));
        assert_eq!(v, Some((2, 7)));
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns OS worker threads")]
    fn parallel_argmin_argmax_match_serial_scan() {
        let values: Vec<u32> = (0..30_000u64)
            .map(|i| (i.wrapping_mul(2654435761) % 1_000_003) as u32)
            .collect();

        // The serial oracle with first-occurrence tie-breaking.
        let mut smin = (0usize, values[0]);
        let mut smax = (0usize, values[0]);
        for (i, &v) in values.iter().enumerate() {
            if v < smin.1 {
                smin = (i, v);
            }
            if v > smax.1 {
                smax = (i, v);
            }
        }

        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(3, backend);
            let amin = crate::reducer::Reducer::new(&pool, MinIndexMonoid::new(), None);
            let amax = crate::reducer::Reducer::new(&pool, MaxIndexMonoid::new(), None);
            pool.run(|| {
                parallel_for(0..values.len(), 256, &|r| {
                    for i in r {
                        amin.observe(i, values[i]);
                        amax.observe(i, values[i]);
                    }
                });
            });
            assert_eq!(amin.into_inner(), Some(smin), "backend {backend:?}");
            assert_eq!(amax.into_inner(), Some(smax), "backend {backend:?}");
        }
    }
}
