//! Hyaline-lite deferred reclamation for the lock-free view lifecycle
//! (DESIGN.md §13).
//!
//! The lock-free public-map pool unlinks nodes that a concurrent reader
//! may still be dereferencing (a `pop` racing another `pop` reads
//! `(*head).next` after losing the CAS). Freeing those nodes must
//! therefore be *deferred* until every reader that could have observed
//! them has moved on. This module implements the smallest scheme that
//! is (a) snapshot-free in the spirit of Hyaline (Nikolaev & Ravindran;
//! PAPERS.md) — retiring threads do the freeing, readers only publish a
//! single word — and (b) entirely expressible over the `msync` atomic
//! facade, so the whole protocol runs under the model checker's
//! weak-memory exploration.
//!
//! The design is a *hazard-era* collector:
//!
//! * a global **era** counter, bumped on every retirement;
//! * a fixed array of **reservation** slots; a reader pins by
//!   publishing the current era into a free slot (validating the era
//!   did not move while publishing), and unpins by storing the
//!   free-marker back;
//! * `retire` stamps the node with the pre-bump era and pushes it onto
//!   a Treiber list; a sweep frees every node whose stamp is older
//!   than the minimum published reservation. Sweeps run off the
//!   critical path — idle workers call [`Collector::collect`] — with a
//!   count-threshold backstop in `retire` so memory stays bounded even
//!   if nothing ever goes idle.
//!
//! **Soundness.** Free a node iff `stamp < min(active reservations)`.
//! A reader pinned at era `r` only ever dereferences pointers it loaded
//! *after* its validated SeqCst era read. If a node's stamp `e` (the
//! value `fetch_add` returned at retire time) satisfies `e < r`, the
//! retirement's SeqCst bump is earlier than the reader's era read in
//! the single total order of SeqCst operations, and the unlinking CAS
//! is sequenced before the bump on the retiring thread. Coherence on
//! the list head then forbids the reader's later Acquire load from
//! returning the unlinked node, so a reader can hold a reference to a
//! node only if its reservation is ≤ the node's stamp — exactly the
//! nodes the sweep refuses to free.

use crate::msync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Free-marker for reservation slots (also the value an empty slot
/// contributes to the minimum, so free slots never retain garbage).
const FREE: u64 = u64::MAX;

/// Reservation slots. Bounds the number of *concurrently pinned*
/// threads, not the number of threads: a pinning thread past the limit
/// spins until a slot frees (pins are a few loads long and never block
/// on locks, so the wait is bounded in practice).
const SLOTS: usize = 64;

/// Retired-count multiple at which the *retiring* thread sweeps. This
/// is a memory backstop, not the main reclamation path: sweeps normally
/// run off the critical path via [`Collector::collect`] (idle workers,
/// see `DomainInner::idle_drain`). A retiring thread only pays a walk
/// when the count crosses a multiple of this — triggering on `>=`
/// instead would let one stale reservation (a reader preempted while
/// pinned holds its era for a whole scheduling quantum, during which
/// nothing can be freed and every sweep re-keeps the whole list) turn
/// *every* subsequent retire into a full-list walk, a quadratic CPU
/// burn right inside the latency-sensitive window the pop sits in.
const SWEEP_THRESHOLD: usize = 512;

/// One deferred-free node.
struct Retired {
    /// Intrusive next pointer; the list is only ever traversed by the
    /// sweeping thread after it takes the whole list with a `swap`, so
    /// a plain field (written before the publishing CAS) suffices.
    next: *mut Retired,
    /// The era stamped at retirement (pre-bump `fetch_add` value).
    stamp: u64,
    /// The retired object and how to destroy it.
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

/// A hazard-era collector protecting one lock-free structure.
pub(crate) struct Collector {
    /// Global era; starts at 1 so a reservation can never equal 0 and
    /// the `FREE` marker is unambiguous.
    era: AtomicU64,
    reservations: [AtomicU64; SLOTS],
    retired: AtomicPtr<Retired>,
    retired_count: AtomicUsize,
    /// Try-lock so only one thread sweeps at a time (sweeping twice is
    /// harmless but wasteful).
    sweeping: AtomicBool,
}

// SAFETY: all fields are atomics; the raw pointers in the retired list
// are owned by the collector from `retire` until the sweep frees them,
// and the hazard-era protocol (module docs) keeps readers and the sweep
// from touching a node simultaneously.
unsafe impl Send for Collector {}
// SAFETY: as above — every shared access goes through the atomics.
unsafe impl Sync for Collector {}

impl Collector {
    pub(crate) const fn new() -> Collector {
        Collector {
            era: AtomicU64::new(1),
            reservations: [const { AtomicU64::new(FREE) }; SLOTS],
            retired: AtomicPtr::new(std::ptr::null_mut()),
            retired_count: AtomicUsize::new(0),
            sweeping: AtomicBool::new(false),
        }
    }

    /// Pins the calling thread: until the returned guard drops, no node
    /// retired at or after the current era will be freed, so pointers
    /// loaded from the protected structure stay dereferenceable.
    // lint: hot-path
    pub(crate) fn pin(&self) -> Guard<'_> {
        loop {
            for slot in self.reservations.iter() {
                if slot.load(Ordering::Relaxed) != FREE {
                    continue;
                }
                let mut era = self.era.load(Ordering::SeqCst);
                if slot
                    .compare_exchange(FREE, era, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    continue; // lost the slot; try the next one
                }
                // Validate: republish until the era is stable across the
                // publication, so the sweep's minimum cannot have missed
                // this reservation while it was being written.
                loop {
                    let now = self.era.load(Ordering::SeqCst);
                    if now == era {
                        // Sanitizer lifecycle shadow: this thread now
                        // protects every stamp >= `era`.
                        #[cfg(all(feature = "sanitize", not(feature = "model")))]
                        cilkm_san::lifecycle::pin(era);
                        return Guard { slot, _c: self };
                    }
                    slot.store(now, Ordering::SeqCst);
                    era = now;
                }
            }
            // All reservation slots taken — wait for one to free.
            crate::msync::spin_hint();
        }
    }

    /// Hands `ptr` to the collector for deferred destruction via
    /// `drop_fn`, and sweeps if enough garbage has accumulated.
    ///
    /// # Safety
    ///
    /// `ptr` must be exclusively owned by the caller (already unlinked:
    /// no new reader can reach it), valid for `drop_fn`, and retired at
    /// most once.
    pub(crate) unsafe fn retire(&self, ptr: *mut u8, drop_fn: unsafe fn(*mut u8)) {
        // Stamp strictly after the unlink (program order on this
        // thread): readers pinned at later eras can no longer reach the
        // node, per the module-level ordering argument.
        let stamp = self.era.fetch_add(1, Ordering::SeqCst);
        // Sanitizer lifecycle shadow: marks the object retired (and
        // flags a double-retire if it already was).
        #[cfg(all(feature = "sanitize", not(feature = "model")))]
        cilkm_san::lifecycle::retire(ptr as usize, stamp);
        let node = Box::into_raw(Box::new(Retired {
            next: std::ptr::null_mut(),
            stamp,
            ptr,
            drop_fn,
        }));
        self.push_retired(node);
        // Crossing-multiples trigger (see SWEEP_THRESHOLD): amortized
        // O(1) per retire even while a stale pin blocks all freeing.
        if (self.retired_count.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(SWEEP_THRESHOLD)
        {
            self.sweep();
        }
    }

    /// Off-critical-path reclamation: sweeps if any garbage is parked.
    /// Idle workers call this (via the `drain_pending` hook chain) so
    /// the common case is that retiring threads never walk the list.
    pub(crate) fn collect(&self) {
        if self.retired_count.load(Ordering::Relaxed) != 0 {
            self.sweep();
        }
    }

    /// Publishes one retired node (allocation stays in [`Collector::retire`]).
    // lint: hot-path
    fn push_retired(&self, node: *mut Retired) {
        let mut head = self.retired.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS below
            // publishes it.
            unsafe { (*node).next = head };
            match self.retired.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Frees every retired node older than all active reservations.
    /// Called opportunistically by retiring threads; never blocks.
    pub(crate) fn sweep(&self) {
        if self.sweeping.swap(true, Ordering::Acquire) {
            return; // another thread is already sweeping
        }
        let mut list = self.retired.swap(std::ptr::null_mut(), Ordering::Acquire);
        self.retired_count.store(0, Ordering::Relaxed);
        let mut min = u64::MAX;
        for slot in &self.reservations {
            min = min.min(slot.load(Ordering::SeqCst));
        }
        let mut kept = 0usize;
        while !list.is_null() {
            // SAFETY: the swap above made this thread the exclusive
            // owner of the taken list; nodes are live until freed here.
            let node = unsafe { Box::from_raw(list) };
            list = node.next;
            if node.stamp < min {
                // Sanitizer: the address may be legitimately reused
                // after this free; clear its retired-shadow entry.
                #[cfg(all(feature = "sanitize", not(feature = "model")))]
                cilkm_san::lifecycle::reclaim(node.ptr as usize);
                // SAFETY: stamp < every active reservation, so no
                // reader can still hold this pointer (module docs), and
                // retire()'s contract says it is valid for drop_fn.
                unsafe { (node.drop_fn)(node.ptr) };
            } else {
                // Still potentially visible to a pinned reader: re-home
                // it for a later sweep. `Box::into_raw` keeps the node
                // allocation alive.
                self.push_retired(Box::into_raw(node));
                kept += 1;
            }
        }
        if kept != 0 {
            self.retired_count.fetch_add(kept, Ordering::Relaxed);
        }
        self.sweeping.store(false, Ordering::Release);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // `&mut self`: no guards (they borrow the collector) and no
        // concurrent retirers exist, so everything can go now.
        let mut list = *self.retired.get_mut();
        while !list.is_null() {
            // SAFETY: exclusive access per above; each node was retired
            // exactly once with a pointer valid for its drop_fn.
            let node = unsafe { Box::from_raw(list) };
            list = node.next;
            #[cfg(all(feature = "sanitize", not(feature = "model")))]
            cilkm_san::lifecycle::reclaim(node.ptr as usize);
            // SAFETY: retire()'s contract — `ptr` valid for `drop_fn`,
            // freed exactly once (here).
            unsafe { (node.drop_fn)(node.ptr) };
        }
    }
}

/// An active pin; dropping it releases the reservation slot.
pub(crate) struct Guard<'a> {
    slot: &'a AtomicU64,
    _c: &'a Collector,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        // Skip the model release while unwinding — a traced op in a
        // Drop during a ModelAbort teardown would double panic (same
        // discipline as the checker's own MutexGuard).
        #[cfg(feature = "model")]
        if std::thread::panicking() {
            return;
        }
        #[cfg(all(feature = "sanitize", not(feature = "model")))]
        cilkm_san::lifecycle::unpin();
        self.slot.store(FREE, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // lint: allow(raw-sync, the DROPS counter is a process-global test-observation static; msync's recorded atomics are scoped to one model run and cannot back a static, and the counter carries no ordering obligation the collector relies on)
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

    static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);

    unsafe fn drop_u64(p: *mut u8) {
        // SAFETY: test nodes are `Box::into_raw(Box<u64>)`, retired once.
        drop(unsafe { Box::from_raw(p as *mut u64) });
        DROPS.fetch_add(1, StdOrdering::SeqCst);
    }

    #[test]
    fn unpinned_garbage_is_freed_by_the_sweep() {
        DROPS.store(0, StdOrdering::SeqCst);
        let c = Collector::new();
        for i in 0..SWEEP_THRESHOLD {
            let p = Box::into_raw(Box::new(i as u64)) as *mut u8;
            // SAFETY: fresh exclusive allocation, retired once.
            unsafe { c.retire(p, drop_u64) };
        }
        // The threshold-crossing retire swept with no reservations
        // active, so everything it saw was freed.
        assert!(DROPS.load(StdOrdering::SeqCst) >= SWEEP_THRESHOLD - 1);
        drop(c);
        assert_eq!(DROPS.load(StdOrdering::SeqCst), SWEEP_THRESHOLD);
    }

    #[test]
    fn a_pin_holds_back_newer_retirements_only() {
        DROPS.store(0, StdOrdering::SeqCst);
        let c = Collector::new();
        let g = c.pin();
        let p = Box::into_raw(Box::new(7u64)) as *mut u8;
        // SAFETY: fresh exclusive allocation, retired once.
        unsafe { c.retire(p, drop_u64) };
        c.sweep();
        // Retired after the pin: must survive the sweep.
        assert_eq!(DROPS.load(StdOrdering::SeqCst), 0);
        drop(g);
        c.sweep();
        assert_eq!(DROPS.load(StdOrdering::SeqCst), 1);
        drop(c);
        assert_eq!(DROPS.load(StdOrdering::SeqCst), 1);
    }

    /// Negative control for the sanitizer's lifecycle detector: an
    /// access to a retired node without a covering pin must be flagged,
    /// and a double retirement must be flagged. The use-after-retire
    /// goes through the real `retire` hook; the double-retire drives
    /// the shadow directly (actually retiring the same pointer twice
    /// would be a real double free at collector drop).
    #[cfg(all(feature = "sanitize", not(feature = "model")))]
    #[test]
    fn sanitizer_flags_unpinned_access_and_double_retire() {
        unsafe fn drop_quiet(p: *mut u8) {
            // SAFETY: nodes here are `Box::into_raw(Box<u64>)`, freed once.
            drop(unsafe { Box::from_raw(p as *mut u64) });
        }
        let c = Collector::new();
        let p = Box::into_raw(Box::new(99u64)) as *mut u8;
        // A pin taken *before* the retirement covers the stamp, so the
        // access while pinned must stay clean (this is the legal
        // racing-popper pattern from MapPool::pop).
        let g = c.pin();
        // SAFETY: fresh exclusive allocation, retired once.
        unsafe { c.retire(p, drop_quiet) };
        cilkm_san::lifecycle::check_access(p as usize, "test.pinned-access");
        drop(g);
        // Pin released: the same access must now be flagged (a
        // fresh pin would be too late — its era is past the stamp).
        cilkm_san::lifecycle::check_access(p as usize, "test.unpinned-access");

        // Double retirement of one (synthetic, leaked) address.
        let q = Box::leak(Box::new(0u64)) as *mut u64 as usize;
        cilkm_san::lifecycle::retire(q, 1000);
        cilkm_san::lifecycle::retire(q, 1001);

        let report = cilkm_san::snapshot();
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.site == "test.unpinned-access"
                    && f.message.contains("use-after-retire")),
            "unpinned use-after-retire was not detected: {report:?}"
        );
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.site == "test.pinned-access"),
            "covered pinned access must not be flagged"
        );
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("double-retire")),
            "double-retire was not detected: {report:?}"
        );
    }

    #[test]
    fn collector_drop_frees_everything_outstanding() {
        DROPS.store(0, StdOrdering::SeqCst);
        let c = Collector::new();
        for i in 0..5u64 {
            let p = Box::into_raw(Box::new(i)) as *mut u8;
            // SAFETY: fresh exclusive allocation, retired once.
            unsafe { c.retire(p, drop_u64) };
        }
        drop(c);
        assert_eq!(DROPS.load(StdOrdering::SeqCst), 5);
    }
}
