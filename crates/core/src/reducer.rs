//! The user-facing reducer handle.
//!
//! A [`Reducer`] corresponds to a Cilk Plus `cilk::reducer` object: it
//! owns the monoid, the *leftmost view* (which carries the initial value
//! and, after a region, the final value), and its slot in the domain's
//! shared id space — the `tlmm_addr` the memory-mapped backend
//! dereferences and the key the hypermap backend hashes.
//!
//! Accesses go through [`Reducer::update`] (or the typed wrappers in
//! [`crate::library`]): on a pool worker this resolves the current
//! execution context's local view through the backend's lookup path; on
//! any other thread it operates directly on the leftmost view (serial
//! semantics, checked against concurrent misuse).

use std::sync::Arc;

use crate::msync::atomic::{AtomicBool, Ordering};

use crate::domain::{Backend, DomainInner, ReducerPool, Slot};
use crate::monoid::{Monoid, MonoidInstance};
use crate::{hypermap, mmap};

struct ReducerInner<M: Monoid> {
    /// Type-erased ops; views in the runtime's maps point at this.
    instance: MonoidInstance,
    /// Keeps `instance.data` alive.
    monoid: Arc<M>,
    slot: Slot,
    /// `slot` pre-split into (private SPA page, in-page index): the
    /// paper's `tlmm_addr` is a concrete address, so no arithmetic
    /// happens on the lookup fast path.
    page: u32,
    idx: u32,
    domain: Arc<DomainInner>,
    /// Set once the leftmost entry has been extracted by `into_inner`.
    /// (Serial-access exclusion lives in the domain-owned slot cell —
    /// see `lockfree::SerialBorrow` — so an idle drainer never races a
    /// flag inside this allocation's lifetime.)
    consumed: AtomicBool,
}

// SAFETY: `instance` is Send/Sync (above), `monoid` is only ever used
// through `&M` by the vtable shims, and the leftmost view lives in the
// domain's tables, so the owner thread can change.
unsafe impl<M: Monoid> Send for ReducerInner<M> {}
// SAFETY: cross-thread access during a parallel region goes through the
// per-context views (never the same view from two threads), and serial
// access to the leftmost view is excluded by `serial_flag`.
unsafe impl<M: Monoid> Sync for ReducerInner<M> {}

/// A reducer hyperobject over monoid `M`.
///
/// Create with [`Reducer::new`]; share across parallel branches by
/// reference (`&Reducer<M>` is `Send + Sync`); read the final value with
/// [`Reducer::get_cloned`], [`Reducer::take`], or [`Reducer::into_inner`].
///
/// # Lifetime rules (as in Cilk)
///
/// The reducer must outlive every parallel region that accesses it, and
/// serial-point operations (`get_cloned`/`take`/`read`) require that no
/// parallel branch is concurrently updating it — i.e. they are legal in
/// the serial spine of the computation, such as between the layers of
/// PBFS. Violations are detected where cheap (overlapping serial access
/// panics) but cannot all be diagnosed.
pub struct Reducer<M: Monoid> {
    inner: Arc<ReducerInner<M>>,
}

#[cfg(debug_assertions)]
thread_local! {
    /// Debug-only reentrancy guard: views with a live `&mut` on this
    /// thread. `update(|v| same_reducer.update(..))` would alias `v`.
    static ACTIVE_VIEWS: std::cell::RefCell<Vec<*mut u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl<M: Monoid> Reducer<M> {
    /// Registers a new reducer with `pool`'s domain, with the given
    /// initial value as its leftmost view.
    pub fn new(pool: &ReducerPool, monoid: M, initial: M::View) -> Reducer<M> {
        Self::new_in_domain(pool.domain(), monoid, initial)
    }

    /// As [`Reducer::new`], but directly against a domain.
    pub fn new_in_domain(domain: &Arc<DomainInner>, monoid: M, initial: M::View) -> Reducer<M> {
        let slot = domain.alloc_slot();
        let monoid = Arc::new(monoid);
        let inner = Arc::new(ReducerInner {
            instance: MonoidInstance::new(&monoid),
            monoid,
            slot,
            page: slot / cilkm_spa::VIEWS_PER_MAP as u32,
            idx: slot % cilkm_spa::VIEWS_PER_MAP as u32,
            domain: Arc::clone(domain),
            consumed: AtomicBool::new(false),
        });
        let leftmost = Box::into_raw(Box::new(initial)) as *mut u8;
        domain.register_leftmost(slot, leftmost, inner.instance.as_erased());
        Reducer { inner }
    }

    /// The reducer's slot id (its `tlmm_addr` analogue) — diagnostics.
    pub fn slot(&self) -> u32 {
        self.inner.slot
    }

    /// The monoid.
    pub fn monoid(&self) -> &M {
        &self.inner.monoid
    }

    /// Applies `f` to the current execution context's local view —
    /// *the* reducer access of the paper.
    ///
    /// On a pool worker this performs the backend lookup (hash probe for
    /// hypermaps; load–load–branch for memory-mapped reducers), lazily
    /// creating an identity view on the first access after a steal. On a
    /// non-worker thread it addresses the leftmost view directly.
    ///
    /// `f` must not access *this* reducer reentrantly (checked in debug
    /// builds); accessing other reducers is fine.
    #[inline]
    pub fn update<R>(&self, f: impl FnOnce(&mut M::View) -> R) -> R {
        let inner = &*self.inner;
        let view = match inner.domain.backend {
            Backend::Mmap => mmap::lookup(
                inner.page as usize,
                inner.idx as usize,
                &inner.instance,
                &inner.domain,
            ),
            Backend::Hypermap => hypermap::lookup(inner.slot, &inner.instance, &inner.domain),
        };
        match view {
            // SAFETY: the backend returned this context's live view for
            // our slot, and only the current thread touches it.
            Some(v) => unsafe { Self::apply(v, f) },
            None => self.update_serial(f),
        }
    }

    #[inline]
    unsafe fn apply<R>(view: *mut u8, f: impl FnOnce(&mut M::View) -> R) -> R {
        #[cfg(debug_assertions)]
        {
            ACTIVE_VIEWS.with(|av| {
                let mut av = av.borrow_mut();
                assert!(
                    !av.contains(&view),
                    "reentrant access to the same reducer view"
                );
                av.push(view);
            });
            struct Pop(*mut u8);
            impl Drop for Pop {
                fn drop(&mut self) {
                    ACTIVE_VIEWS.with(|av| {
                        let mut av = av.borrow_mut();
                        let p = av.pop();
                        debug_assert_eq!(p, Some(self.0));
                    });
                }
            }
            let _pop = Pop(view);
            f(&mut *(view as *mut M::View))
        }
        #[cfg(not(debug_assertions))]
        f(&mut *(view as *mut M::View))
    }

    #[cold]
    fn update_serial<R>(&self, f: impl FnOnce(&mut M::View) -> R) -> R {
        let inner = &*self.inner;
        let _borrow = inner.domain.serial_user(inner.slot);
        // SAFETY: we hold the serial word and the slot is registered
        // (this reducer is alive).
        unsafe { inner.domain.drain_pending_slot(inner.slot) };
        inner.domain.instrument.lookups.inc();
        let entry = inner
            .domain
            .leftmost_entry(inner.slot)
            .expect("reducer already consumed");
        // SAFETY: the serial borrow excludes concurrent serial access,
        // and the leftmost view is live until unregistered.
        unsafe { Self::apply(entry.view, f) }
    }

    /// Folds the *current worker context's* view (if any) into leftmost
    /// storage. Sound only at a serial point for this reducer; the caller
    /// must hold the reducer's serial borrow.
    fn fold_current(&self) {
        let inner = &*self.inner;
        let view = match inner.domain.backend {
            Backend::Mmap => mmap::remove_current(inner.slot, &inner.domain),
            Backend::Hypermap => {
                hypermap::remove_current(inner.instance.as_erased() as u64, &inner.domain)
            }
        };
        if let Some(v) = view {
            // SAFETY: `v` was removed from the current context (sole
            // owner now), and the caller holds the serial borrow as the
            // function contract requires.
            unsafe { inner.domain.fold_into_leftmost_unguarded(inner.slot, v) };
        }
    }

    /// Reads the reducer's value at a serial point, after folding any
    /// pending detached views and the current context view into the
    /// leftmost view.
    pub fn read<R>(&self, f: impl FnOnce(&M::View) -> R) -> R {
        let inner = &*self.inner;
        let _borrow = inner.domain.serial_user(inner.slot);
        // SAFETY: serial word held; slot registered while we are alive.
        unsafe { inner.domain.drain_pending_slot(inner.slot) };
        self.fold_current();
        let entry = inner
            .domain
            .leftmost_entry(inner.slot)
            .expect("reducer already consumed");
        // SAFETY: the leftmost view is a live `M::View` created by this
        // reducer, and the serial borrow excludes concurrent mutation.
        unsafe { f(&*(entry.view as *const M::View)) }
    }

    /// Clones the reducer's value at a serial point.
    pub fn get_cloned(&self) -> M::View
    where
        M::View: Clone,
    {
        self.read(|v| v.clone())
    }

    /// Takes the accumulated value and resets the reducer to the monoid
    /// identity — the PBFS bag-swap operation: read a layer's bag and
    /// start the next layer empty, at the serial point between layers.
    pub fn take(&self) -> M::View {
        let inner = &*self.inner;
        let _borrow = inner.domain.serial_user(inner.slot);
        // SAFETY: serial word held; slot registered while we are alive.
        unsafe { inner.domain.drain_pending_slot(inner.slot) };
        self.fold_current();
        let fresh = Box::into_raw(Box::new(inner.monoid.identity())) as *mut u8;
        let old = inner.domain.swap_leftmost_view(inner.slot, fresh);
        // SAFETY: `old` is the previous leftmost view — a
        // `Box<M::View>` this reducer created — and the swap removed the
        // only other pointer to it.
        unsafe { *Box::from_raw(old as *mut M::View) }
    }

    /// Replaces the reducer's value with `value` at a serial point,
    /// discarding whatever was accumulated — Cilk Plus's `move_in`.
    ///
    /// Any pending context view is destroyed unmerged, and the leftmost
    /// view is overwritten, so after `set` the reducer behaves as if
    /// freshly created with `value`.
    pub fn set(&self, value: M::View) {
        let inner = &*self.inner;
        let _borrow = inner.domain.serial_user(inner.slot);
        // Fold parked detached views first: left on the pending list,
        // they would later fold into the *new* value and resurrect the
        // history `set` is supposed to discard.
        // SAFETY: serial word held; slot registered while we are alive.
        unsafe { inner.domain.drain_pending_slot(inner.slot) };
        // Discard (not fold) the current context's view, per move_in.
        let ctx = match inner.domain.backend {
            Backend::Mmap => mmap::remove_current(inner.slot, &inner.domain),
            Backend::Hypermap => {
                hypermap::remove_current(inner.instance.as_erased() as u64, &inner.domain)
            }
        };
        if let Some(v) = ctx {
            // SAFETY: removal made us the sole owner of this boxed view.
            unsafe { drop(Box::from_raw(v as *mut M::View)) };
        }
        let fresh = Box::into_raw(Box::new(value)) as *mut u8;
        let old = inner.domain.swap_leftmost_view(inner.slot, fresh);
        // SAFETY: as in `take` — the swap yields sole ownership of the
        // old boxed view.
        unsafe { drop(Box::from_raw(old as *mut M::View)) };
    }

    /// Consumes the reducer and returns its final value.
    pub fn into_inner(self) -> M::View {
        let inner = &*self.inner;
        let _borrow = inner.domain.serial_user(inner.slot);
        // SAFETY: serial word held; slot registered until the
        // unregister below.
        unsafe { inner.domain.drain_pending_slot(inner.slot) };
        self.fold_current();
        inner.consumed.store(true, Ordering::Release);
        let view = inner
            .domain
            .unregister_leftmost(inner.slot)
            .expect("reducer already consumed");
        // SAFETY: unregistering returned the sole pointer to the boxed
        // leftmost view; `consumed` stops any later double-free.
        unsafe { *Box::from_raw(view as *mut M::View) }
    }
}

impl<M: Monoid> Drop for ReducerInner<M> {
    fn drop(&mut self) {
        if !*self.consumed.get_mut() {
            // Destroy the leftmost view if still registered; also remove
            // any view the current (serial) context still holds, so the
            // slot can be recycled safely.
            let ctx_view = match self.domain.backend {
                Backend::Mmap => mmap::remove_current(self.slot, &self.domain),
                Backend::Hypermap => {
                    hypermap::remove_current(self.instance.as_erased() as u64, &self.domain)
                }
            };
            if let Some(v) = ctx_view {
                // SAFETY: removal made us the sole owner of the view.
                unsafe { drop(Box::from_raw(v as *mut M::View)) };
            }
            {
                // Take the serial word: an idle drainer mid-fold on this
                // slot is spun out here, and none can start afterwards
                // (the drain hook re-checks registration under the word).
                let _borrow = self.domain.serial_user(self.slot);
                // Fold parked views before tearing down, so their boxes
                // are not leaked on the pending list.
                // SAFETY: serial word held; slot still registered.
                unsafe { self.domain.drain_pending_slot(self.slot) };
                if let Some(view) = self.domain.unregister_leftmost(self.slot) {
                    // SAFETY: unregistering returned the sole pointer to
                    // the boxed leftmost view.
                    unsafe { drop(Box::from_raw(view as *mut M::View)) };
                }
            }
        }
        self.domain.free_slot(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::SumMonoid;
    use cilkm_runtime::{join, parallel_for};

    fn both_backends() -> Vec<ReducerPool> {
        vec![
            ReducerPool::new(2, Backend::Hypermap),
            ReducerPool::new(2, Backend::Mmap),
        ]
    }

    #[test]
    fn serial_updates_hit_leftmost() {
        for pool in both_backends() {
            let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 10);
            r.update(|v| *v += 5);
            assert_eq!(r.get_cloned(), 15);
            assert_eq!(r.into_inner(), 15);
        }
    }

    #[test]
    fn parallel_sum_matches_serial() {
        for pool in both_backends() {
            let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
            pool.run(|| {
                parallel_for(0..10_000, 64, &|range| {
                    for i in range {
                        r.update(|v| *v += i as u64);
                    }
                });
            });
            assert_eq!(r.get_cloned(), (0..10_000u64).sum::<u64>());
        }
    }

    #[test]
    fn initial_value_participates() {
        for pool in both_backends() {
            let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 1000);
            pool.run(|| {
                let (_, _) = join(|| r.update(|v| *v += 1), || r.update(|v| *v += 2));
            });
            assert_eq!(r.into_inner(), 1003);
        }
    }

    #[test]
    fn take_resets_to_identity() {
        for pool in both_backends() {
            let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
            pool.run(|| {
                parallel_for(0..100, 4, &|range| {
                    for _ in range {
                        r.update(|v| *v += 1);
                    }
                });
            });
            assert_eq!(r.take(), 100);
            assert_eq!(r.get_cloned(), 0);
            pool.run(|| r.update(|v| *v += 7));
            assert_eq!(r.take(), 7);
        }
    }

    #[test]
    fn many_regions_accumulate() {
        for pool in both_backends() {
            let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
            for _ in 0..10 {
                pool.run(|| {
                    parallel_for(0..100, 8, &|range| {
                        for _ in range {
                            r.update(|v| *v += 1);
                        }
                    });
                });
            }
            assert_eq!(r.into_inner(), 1000);
        }
    }

    #[test]
    fn dropping_midway_recycles_slot() {
        for pool in both_backends() {
            let r1 = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
            let s1 = r1.slot();
            drop(r1);
            let r2 = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
            assert_eq!(r2.slot(), s1, "slot recycled");
            pool.run(|| r2.update(|v| *v += 3));
            assert_eq!(r2.into_inner(), 3);
        }
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "instrument"))]
    fn lookup_instrument_counts() {
        for pool in both_backends() {
            let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
            pool.run(|| {
                for _ in 0..500 {
                    r.update(|v| *v += 1);
                }
            });
            let snap = pool.instrument();
            assert!(snap.lookups >= 500, "lookups={}", snap.lookups);
        }
    }

    /// Satellite of the observability PR: the per-worker hot-path lookup
    /// `Cell`s must be flushed on the `discard` (panic) path too, so the
    /// domain totals are *exact* even when one side of a join panics.
    #[test]
    #[cfg(any(debug_assertions, feature = "instrument"))]
    fn lookup_totals_exact_when_one_side_of_a_join_panics() {
        use crate::msync::atomic::{AtomicBool, Ordering};
        for pool in both_backends() {
            let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
            let running = AtomicBool::new(false);
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|| {
                    join(
                        || {
                            // Hold the owner in user code until the right
                            // side runs on the thief, so its views come
                            // back as a deposit and the failed merge takes
                            // the `discard` path.
                            while !running.load(Ordering::Acquire) {
                                std::hint::spin_loop();
                            }
                            for _ in 0..500 {
                                r.update(|v| *v += 1);
                            }
                            panic!("left dies after 500 lookups");
                        },
                        || {
                            running.store(true, Ordering::Release);
                            for _ in 0..300 {
                                r.update(|v| *v += 1);
                            }
                        },
                    );
                })
            }));
            assert!(res.is_err(), "the left panic must propagate");
            let snap = pool.instrument();
            assert_eq!(
                snap.lookups, 800,
                "500 owner + 300 thief lookups must all be flushed"
            );
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "reentrant access")]
    fn reentrant_update_panics_in_debug() {
        let pool = ReducerPool::new(1, Backend::Mmap);
        let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
        pool.run(|| {
            r.update(|_| {
                r.update(|v| *v += 1);
            });
        });
    }

    #[test]
    fn many_reducers_at_once() {
        for pool in both_backends() {
            let rs: Vec<_> = (0..300)
                .map(|i| Reducer::new(&pool, SumMonoid::<u64>::new(), i as u64))
                .collect();
            pool.run(|| {
                parallel_for(0..300, 8, &|range| {
                    for i in range {
                        rs[i].update(|v| *v += 1);
                    }
                });
            });
            for (i, r) in rs.iter().enumerate() {
                assert_eq!(r.get_cloned(), i as u64 + 1, "reducer {i}");
            }
        }
    }
}
