//! The reducer *domain*: everything shared by all reducers of one pool —
//! backend choice, the slot allocator (the `tlmm_addr` space of §6), the
//! leftmost-view registry, the shared arena of simulated physical pages,
//! and the global pool of recyclable public SPA maps (§7).

use std::sync::Arc;

use crate::msync::atomic::{AtomicBool, Ordering};
use crate::msync::Mutex;

use cilkm_runtime::{HyperHooks, Pool, PoolBuilder, PoolStats};
use cilkm_spa::SpaMapBox;
use cilkm_tlmm::PageArena;

use crate::instrument::{Instrument, InstrumentSnapshot, ReduceHistograms};
use crate::monoid::MonoidInstance;

/// Which reducer mechanism a pool runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The Cilk Plus baseline: per-context hash tables (§3).
    Hypermap,
    /// The Cilk-M memory-mapping mechanism: TLMM + SPA maps (§4–§7).
    Mmap,
}

/// A reducer's identifier: its index in the shared slot space. For the
/// memory-mapped backend this is literally the paper's `tlmm_addr` (slot
/// `s` lives at byte `16·(s mod 248)` of private SPA page `s div 248` in
/// every worker's TLMM region); the hypermap backend uses the same id as
/// its hash key, standing in for the reducer's address.
pub(crate) type Slot = u32;

struct SlotAlloc {
    free: Vec<Slot>,
    next: Slot,
}

/// One reducer's leftmost storage: the view that holds the initial value
/// and, after a region completes, the final value.
#[derive(Copy, Clone)]
pub(crate) struct LeftmostEntry {
    pub view: *mut u8,
    pub monoid: *const u8,
    /// The reducer's serial-access flag (lives in the `ReducerInner`,
    /// which strictly outlives this entry): region-end folds acquire it
    /// so racing a serial-path access panics instead of racing.
    pub flag: *const AtomicBool,
}

/// Shared state of a reducer domain. Usually reached through
/// [`ReducerPool`]; exposed so benches can instrument it directly.
pub struct DomainInner {
    pub(crate) backend: Backend,
    pub(crate) instrument: Instrument,
    slots: Mutex<SlotAlloc>,
    leftmost: Mutex<Vec<Option<LeftmostEntry>>>,
    /// Simulated physical pages backing every worker's TLMM region.
    pub(crate) arena: Arc<PageArena>,
    /// Global pool of empty public SPA maps (rebalanced with the workers'
    /// local pools in the manner of Hoard, §7 footnote 7).
    public_pool: Mutex<Vec<SpaMapBox>>,
}

// SAFETY: the only non-auto-Send field is the public SPA-map pool, whose
// raw page pointers are plain heap memory owned by the pooled boxes and
// untouched while they sit in the (mutex-guarded) pool.
unsafe impl Send for DomainInner {}
// SAFETY: every field is either atomic or behind a `Mutex`; the raw
// pointers in the pool are only reachable through those locks.
unsafe impl Sync for DomainInner {}

impl DomainInner {
    pub(crate) fn new(backend: Backend) -> DomainInner {
        DomainInner {
            backend,
            instrument: Instrument::new(),
            slots: Mutex::new(SlotAlloc {
                free: Vec::new(),
                next: 0,
            }),
            leftmost: Mutex::new(Vec::new()),
            arena: Arc::new(PageArena::new()),
            public_pool: Mutex::new(Vec::new()),
        }
    }

    /// Which mechanism this domain runs.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Instrumentation totals for the domain.
    pub fn instrument(&self) -> InstrumentSnapshot {
        self.instrument.snapshot()
    }

    /// The four §8 overhead categories as latency distributions.
    pub fn overhead_histograms(&self) -> ReduceHistograms {
        self.instrument.histograms()
    }

    pub(crate) fn alloc_slot(&self) -> Slot {
        let mut a = self.slots.lock();
        if let Some(s) = a.free.pop() {
            s
        } else {
            let s = a.next;
            a.next = a.next.checked_add(1).expect("slot space exhausted");
            s
        }
    }

    pub(crate) fn free_slot(&self, slot: Slot) {
        self.slots.lock().free.push(slot);
    }

    pub(crate) fn register_leftmost(
        &self,
        slot: Slot,
        view: *mut u8,
        monoid: *const u8,
        flag: *const AtomicBool,
    ) {
        let mut reg = self.leftmost.lock();
        let idx = slot as usize;
        if reg.len() <= idx {
            reg.resize(idx + 1, None);
        }
        debug_assert!(reg[idx].is_none(), "slot {slot} already registered");
        reg[idx] = Some(LeftmostEntry { view, monoid, flag });
    }

    pub(crate) fn unregister_leftmost(&self, slot: Slot) -> Option<LeftmostEntry> {
        self.leftmost.lock()[slot as usize].take()
    }

    pub(crate) fn leftmost_entry(&self, slot: Slot) -> Option<LeftmostEntry> {
        self.leftmost.lock().get(slot as usize).copied().flatten()
    }

    /// Replaces the leftmost view pointer of `slot`, returning the old one.
    pub(crate) fn swap_leftmost_view(&self, slot: Slot, new_view: *mut u8) -> *mut u8 {
        let mut reg = self.leftmost.lock();
        let entry = reg[slot as usize].as_mut().expect("slot not registered");
        std::mem::replace(&mut entry.view, new_view)
    }

    /// Folds a detached `view` into the leftmost storage of `slot`, with
    /// the leftmost as the serially-earlier (left) operand. Consumes
    /// `view`.
    ///
    /// # Safety
    ///
    /// `view` must be a live boxed view of the slot's monoid type, and
    /// the caller must be at a serial point for this reducer (no other
    /// thread folding or reading the same slot concurrently).
    pub(crate) unsafe fn fold_into_leftmost(&self, slot: Slot, view: *mut u8) {
        // Copy the entry out, then reduce outside the lock: the monoid's
        // reduce is user code and may itself touch (other) reducers.
        let entry = self
            .leftmost_entry(slot)
            .unwrap_or_else(|| panic!("views outlive reducer for slot {slot}"));
        // Exclude concurrent serial-path accesses (panics on a genuine
        // race, which is a program error per the Cilk rules).
        let _borrow = SerialBorrow::acquire(&*entry.flag);
        let inst = MonoidInstance::from_erased(entry.monoid);
        inst.reduce_into(entry.view, view);
    }

    /// As [`DomainInner::fold_into_leftmost`], for callers that already
    /// hold the reducer's serial borrow (the `Reducer` serial-point ops).
    ///
    /// # Safety
    ///
    /// Same as `fold_into_leftmost`, plus: the caller must hold the
    /// reducer's serial-access borrow.
    pub(crate) unsafe fn fold_into_leftmost_unguarded(&self, slot: Slot, view: *mut u8) {
        let entry = self
            .leftmost_entry(slot)
            .unwrap_or_else(|| panic!("views outlive reducer for slot {slot}"));
        let inst = MonoidInstance::from_erased(entry.monoid);
        inst.reduce_into(entry.view, view);
    }

    /// Takes an empty public SPA map from the global pool (or a fresh one).
    pub(crate) fn take_public_map(&self) -> SpaMapBox {
        self.public_pool.lock().pop().unwrap_or_default()
    }

    /// Returns empty public SPA maps to the global pool.
    pub(crate) fn recycle_public_maps(&self, maps: impl IntoIterator<Item = SpaMapBox>) {
        let mut pool = self.public_pool.lock();
        for m in maps {
            debug_assert!(m.as_ref().is_empty(), "recycling a non-empty public map");
            pool.push(m);
        }
    }

    /// Number of live reducers (registered leftmost entries) — test aid.
    pub fn live_reducers(&self) -> usize {
        self.leftmost.lock().iter().filter(|e| e.is_some()).count()
    }

    /// The simulated physical-page arena backing the workers' TLMM
    /// regions (diagnostics and leak tests).
    pub fn arena_handle(&self) -> &Arc<PageArena> {
        &self.arena
    }
}

impl cilkm_obs::MetricsSource for DomainInner {
    fn collect(&self, out: &mut cilkm_obs::metrics::MetricsCollector) {
        let i = &self.instrument;
        out.counter("lookups", i.lookups.get());
        out.counter("view_creations", i.view_creations.get());
        out.counter("view_insertions", i.view_insertions.get());
        out.counter("transferals", i.transferals.get());
        out.counter("transferal_views", i.transferal_views.get());
        out.counter("merges", i.merges.get());
        out.counter("merge_pairs", i.merge_pairs.get());
        out.counter("log_overflows", i.log_overflows.get());
        out.histogram("view_creation_ns", i.view_creation_ns.snapshot());
        out.histogram("view_insertion_ns", i.view_insertion_ns.snapshot());
        out.histogram("transferal_ns", i.transferal_ns.snapshot());
        out.histogram("merge_ns", i.merge_ns.snapshot());
        let c = self.arena.crossings().snapshot();
        out.counter("palloc_calls", c.palloc_calls);
        out.counter("pfree_calls", c.pfree_calls);
        out.counter("pmap_calls", c.pmap_calls);
        out.counter("pmap_pages", c.pmap_pages);
    }
}

/// A guard for serial (outside-region or serial-point) accesses to one
/// reducer: panics on concurrent serial access rather than racing.
pub(crate) struct SerialBorrow<'a> {
    flag: &'a AtomicBool,
}

impl<'a> SerialBorrow<'a> {
    pub fn acquire(flag: &'a AtomicBool) -> SerialBorrow<'a> {
        assert!(
            !flag.swap(true, Ordering::Acquire),
            "concurrent serial access to a reducer (serial accesses must not overlap)"
        );
        SerialBorrow { flag }
    }
}

impl Drop for SerialBorrow<'_> {
    fn drop(&mut self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// A work-stealing pool with a reducer mechanism installed — one "runtime
/// system" in the paper's sense. Construct one per experiment arm:
/// `ReducerPool::new(16, Backend::Mmap)` is Cilk-M 1.0,
/// `ReducerPool::new(16, Backend::Hypermap)` is Cilk Plus.
pub struct ReducerPool {
    pool: Pool,
    domain: Arc<DomainInner>,
}

impl ReducerPool {
    /// Creates a pool of `threads` workers running the given backend.
    pub fn new(threads: usize, backend: Backend) -> ReducerPool {
        Self::with_stack_size(threads, backend, 8 << 20)
    }

    /// As [`ReducerPool::new`] with an explicit worker stack size.
    pub fn with_stack_size(threads: usize, backend: Backend, stack: usize) -> ReducerPool {
        let domain = Arc::new(DomainInner::new(backend));
        let base = match backend {
            Backend::Hypermap => "domain.hypermap",
            Backend::Mmap => "domain.mmap",
        };
        let weak = Arc::downgrade(&domain);
        cilkm_obs::metrics::global()
            .register(base, weak as std::sync::Weak<dyn cilkm_obs::MetricsSource>);
        let hooks: Arc<dyn HyperHooks> = match backend {
            Backend::Hypermap => Arc::new(crate::hypermap::HypermapHooks::new(Arc::clone(&domain))),
            Backend::Mmap => Arc::new(crate::mmap::MmapHooks::new(Arc::clone(&domain))),
        };
        let pool = PoolBuilder::new(threads)
            .hooks(hooks)
            .stack_size(stack)
            .build();
        ReducerPool { pool, domain }
    }

    /// Runs `f` as a parallel region; reducer final values are folded into
    /// leftmost storage before this returns.
    pub fn run<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        self.pool.run(f)
    }

    /// As [`ReducerPool::run`], additionally collecting the scheduler and
    /// reducer event trace of the region (empty without the `trace`
    /// feature; see `cilkm_runtime::Pool::run_traced` for caveats).
    pub fn run_traced<F, R>(&self, f: F) -> (R, cilkm_obs::Trace)
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        self.pool.run_traced(f)
    }

    /// Number of workers.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Which backend this pool runs.
    pub fn backend(&self) -> Backend {
        self.domain.backend
    }

    /// The shared domain (for creating reducers and reading instruments).
    pub fn domain(&self) -> &Arc<DomainInner> {
        &self.domain
    }

    /// Scheduler statistics (steals etc.).
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Reducer-mechanism instrumentation totals.
    pub fn instrument(&self) -> InstrumentSnapshot {
        self.domain.instrument()
    }

    /// The four §8 overhead categories as latency distributions (the
    /// histogram sums are the [`InstrumentSnapshot`] nanosecond totals).
    pub fn overhead_histograms(&self) -> ReduceHistograms {
        self.domain.overhead_histograms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_recycled() {
        let d = DomainInner::new(Backend::Mmap);
        let a = d.alloc_slot();
        let b = d.alloc_slot();
        assert_ne!(a, b);
        d.free_slot(a);
        assert_eq!(d.alloc_slot(), a);
    }

    #[test]
    fn leftmost_registry_roundtrip() {
        let d = DomainInner::new(Backend::Hypermap);
        let s = d.alloc_slot();
        let view = Box::into_raw(Box::new(5u64)) as *mut u8;
        let flag = AtomicBool::new(false);
        d.register_leftmost(s, view, std::ptr::null(), &flag);
        assert_eq!(d.live_reducers(), 1);
        let e = d.leftmost_entry(s).unwrap();
        assert_eq!(e.view, view);
        let e = d.unregister_leftmost(s).unwrap();
        // SAFETY: the view was `Box::into_raw`ed above and unregistering
        // returned the sole remaining pointer to it.
        unsafe { drop(Box::from_raw(e.view as *mut u64)) };
        assert_eq!(d.live_reducers(), 0);
        assert!(d.leftmost_entry(s).is_none());
    }

    #[test]
    fn public_map_pool_recycles() {
        let d = DomainInner::new(Backend::Mmap);
        let m = d.take_public_map();
        d.recycle_public_maps([m]);
        let _m2 = d.take_public_map(); // reused, no assertion = fine
    }

    #[test]
    fn serial_borrow_excludes() {
        let flag = AtomicBool::new(false);
        let b = SerialBorrow::acquire(&flag);
        assert!(flag.load(Ordering::Relaxed));
        drop(b);
        assert!(!flag.load(Ordering::Relaxed));
        let _b2 = SerialBorrow::acquire(&flag);
    }

    #[test]
    #[should_panic(expected = "concurrent serial access")]
    fn serial_borrow_panics_on_overlap() {
        let flag = AtomicBool::new(false);
        let _a = SerialBorrow::acquire(&flag);
        let _b = SerialBorrow::acquire(&flag);
    }

    #[test]
    fn domain_appears_in_the_global_metrics_registry() {
        let pool = ReducerPool::new(2, Backend::Mmap);
        pool.run(|| ());
        let snap = cilkm_obs::metrics::global().snapshot();
        // Other tests register domains concurrently, so just require that
        // some mmap domain exports the expected counter and histogram
        // vocabulary (prefixes are uniquified as domain.mmap, #2, ...).
        assert!(
            snap.values
                .keys()
                .any(|k| k.starts_with("domain.mmap") && k.ends_with(".lookups")),
            "no domain.mmap*.lookups key in {:?}",
            snap.values.keys().collect::<Vec<_>>()
        );
        assert!(snap
            .values
            .keys()
            .any(|k| k.starts_with("domain.mmap") && k.ends_with(".merge_ns")));
        drop(pool);
    }

    #[test]
    fn pools_construct_for_both_backends() {
        let h = ReducerPool::new(2, Backend::Hypermap);
        let m = ReducerPool::new(2, Backend::Mmap);
        assert_eq!(h.backend(), Backend::Hypermap);
        assert_eq!(m.backend(), Backend::Mmap);
        assert_eq!(h.run(|| 1 + 1), 2);
        assert_eq!(m.run(|| 2 + 2), 4);
    }
}
