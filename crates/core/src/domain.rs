//! The reducer *domain*: everything shared by all reducers of one pool —
//! backend choice, the slot allocator (the `tlmm_addr` space of §6), the
//! leftmost-view registry, the shared arena of simulated physical pages,
//! and the global pool of recyclable public SPA maps (§7).

use std::sync::Arc;

use cilkm_runtime::{HyperHooks, Pool, PoolBuilder, PoolStats};
use cilkm_spa::SpaMapBox;
use cilkm_tlmm::PageArena;

use crate::instrument::{Instrument, InstrumentSnapshot, ReduceHistograms};
use crate::lockfree::{MapPool, SerialBorrow, SlotRegistry};
use crate::monoid::MonoidInstance;

/// Which reducer mechanism a pool runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The Cilk Plus baseline: per-context hash tables (§3).
    Hypermap,
    /// The Cilk-M memory-mapping mechanism: TLMM + SPA maps (§4–§7).
    Mmap,
}

/// A reducer's identifier: its index in the shared slot space. For the
/// memory-mapped backend this is literally the paper's `tlmm_addr` (slot
/// `s` lives at byte `16·(s mod 248)` of private SPA page `s div 248` in
/// every worker's TLMM region); the hypermap backend uses the same id as
/// its hash key, standing in for the reducer's address.
pub(crate) type Slot = u32;

/// One reducer's leftmost storage: the view that holds the initial value
/// and, after a region completes, the final value.
#[derive(Copy, Clone)]
pub(crate) struct LeftmostEntry {
    pub view: *mut u8,
    pub monoid: *const u8,
}

/// Shared state of a reducer domain. Usually reached through
/// [`ReducerPool`]; exposed so benches can instrument it directly.
///
/// Since the lock-free view-lifecycle rework (DESIGN.md §13) nothing
/// here is mutex-guarded: the slot allocator, leftmost registry, and
/// pending-merge lists live in the [`SlotRegistry`]'s per-slot atomic
/// cells, and the public SPA-map pool is a Treiber free-list with
/// hazard-era reclamation. A returning thief or region-end collect
/// pushes detached views and moves on; folds happen off the steal
/// critical path (owner's next serial touch, or the idle-worker drain
/// hook).
pub struct DomainInner {
    pub(crate) backend: Backend,
    pub(crate) instrument: Instrument,
    registry: SlotRegistry,
    /// Simulated physical pages backing every worker's TLMM region.
    pub(crate) arena: Arc<PageArena>,
    /// Lock-free pool of empty public SPA maps (rebalanced with the
    /// workers' local pools in the manner of Hoard, §7 footnote 7).
    public_pool: MapPool,
    /// Minimum `nvalid` at which `detach` exchanges a private page
    /// wholesale (descriptor handoff + one batched remap) instead of
    /// copying its views pair-by-pair (§7's copy path). Sparse pages
    /// stay on the copy path because a remap crossing can cost more
    /// than copying a couple of pairs; the default comes from the
    /// `ablation_exchange` bench and can be pinned with the
    /// `CILKM_EXCHANGE_THRESHOLD` env var (`0`/`none`/huge = never
    /// exchange is spelled as `usize::MAX`).
    // lint: allow(raw-sync, the threshold is a Relaxed-only config knob read once per detach; routing it through msync would add a recorded model op to every detach and grow checker state for zero verification value — same policy as cilkm-runtime::registry)
    exchange_threshold: std::sync::atomic::AtomicUsize,
}

/// Default exchange threshold: the `ablation_exchange` crossover — below
/// about this many views, pair-copying beats paying the remap crossings.
pub const DEFAULT_EXCHANGE_THRESHOLD: usize = 8;

fn exchange_threshold_from_env() -> usize {
    match std::env::var("CILKM_EXCHANGE_THRESHOLD") {
        Ok(v) => v.parse().unwrap_or(DEFAULT_EXCHANGE_THRESHOLD),
        Err(_) => DEFAULT_EXCHANGE_THRESHOLD,
    }
}

impl DomainInner {
    pub(crate) fn new(backend: Backend) -> DomainInner {
        DomainInner {
            backend,
            instrument: Instrument::new(),
            registry: SlotRegistry::new(),
            arena: Arc::new(PageArena::new()),
            public_pool: MapPool::new(),
            // lint: allow(raw-sync, Relaxed-only config knob — see the field declaration)
            exchange_threshold: std::sync::atomic::AtomicUsize::new(exchange_threshold_from_env()),
        }
    }

    /// Current detach page-exchange threshold (`nvalid() >= K` exchanges).
    pub fn exchange_threshold(&self) -> usize {
        // lint: allow(raw-sync, Relaxed-only config knob — see the field declaration)
        let order = std::sync::atomic::Ordering::Relaxed;
        self.exchange_threshold.load(order)
    }

    /// Sets the detach page-exchange threshold for this domain: `1`
    /// exchanges every non-empty page, `usize::MAX` restores the pure §7
    /// copy path. Benches use this for the threshold ablation and tests
    /// use it to force one path deterministically.
    pub fn set_exchange_threshold(&self, k: usize) {
        // lint: allow(raw-sync, Relaxed-only config knob — see the field declaration)
        let order = std::sync::atomic::Ordering::Relaxed;
        self.exchange_threshold.store(k, order);
    }

    /// Which mechanism this domain runs.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Instrumentation totals for the domain.
    pub fn instrument(&self) -> InstrumentSnapshot {
        self.instrument.snapshot()
    }

    /// The four §8 overhead categories as latency distributions.
    pub fn overhead_histograms(&self) -> ReduceHistograms {
        self.instrument.histograms()
    }

    pub(crate) fn alloc_slot(&self) -> Slot {
        self.registry.alloc()
    }

    pub(crate) fn free_slot(&self, slot: Slot) {
        self.registry.free(slot);
    }

    pub(crate) fn register_leftmost(&self, slot: Slot, view: *mut u8, monoid: *const u8) {
        self.registry.register(slot, view, monoid);
    }

    pub(crate) fn unregister_leftmost(&self, slot: Slot) -> Option<*mut u8> {
        self.registry.unregister(slot)
    }

    pub(crate) fn leftmost_entry(&self, slot: Slot) -> Option<LeftmostEntry> {
        self.registry
            .entry(slot)
            .map(|(view, monoid)| LeftmostEntry { view, monoid })
    }

    /// Replaces the leftmost view pointer of `slot`, returning the old one.
    pub(crate) fn swap_leftmost_view(&self, slot: Slot, new_view: *mut u8) -> *mut u8 {
        self.registry.swap_view(slot, new_view)
    }

    /// Takes the reducer's serial word for a user serial-path access
    /// (spins out an idle drainer, panics on overlapping users).
    pub(crate) fn serial_user(&self, slot: Slot) -> SerialBorrow<'_> {
        SerialBorrow::acquire_user(self.registry.cell(slot))
    }

    /// Hands a detached `view` to `slot`'s pending-merge list — the
    /// steal-return/merge half of the lock-free handoff. No lock, no
    /// fold: the caller continues immediately, and the fold into
    /// leftmost storage happens on the owner's next serial touch or in
    /// [`DomainInner::idle_drain`].
    ///
    /// # Safety
    ///
    /// `view` must be a live boxed view of the slot's monoid type, and
    /// the slot must still be registered (views must not outlive their
    /// reducer).
    pub(crate) unsafe fn push_pending(&self, slot: Slot, view: *mut u8) {
        self.instrument.pending_views.inc();
        // SAFETY: forwarded caller contract.
        unsafe { self.registry.push_pending(slot, view) };
    }

    /// Region-exit handoff of a slot's final view: fold it (and any
    /// parked predecessors) into the leftmost right now if the slot's
    /// serial word is free — the overwhelmingly common case at a region
    /// boundary, costing one CAS and no allocation — otherwise park it
    /// on the pending-merge list for the owner's next serial touch or
    /// an idle drain. Never blocks.
    ///
    /// # Safety
    ///
    /// As [`DomainInner::push_pending`].
    pub(crate) unsafe fn fold_or_park(&self, slot: Slot, view: *mut u8) {
        // SAFETY: forwarded caller contract.
        if unsafe { self.registry.try_fold_root(slot, view) } {
            return;
        }
        // SAFETY: forwarded caller contract.
        unsafe { self.push_pending(slot, view) };
    }

    /// Folds `slot`'s pending views into its leftmost view, in serial
    /// order. Called by every serial-point reducer operation right
    /// after taking the serial word.
    ///
    /// # Safety
    ///
    /// The caller must hold `slot`'s serial word and the slot must be
    /// registered.
    pub(crate) unsafe fn drain_pending_slot(&self, slot: Slot) {
        let cell = self.registry.cell(slot);
        let t0 = std::time::Instant::now();
        // SAFETY: forwarded caller contract.
        let n = unsafe { self.registry.drain_cell(cell) };
        if n != 0 {
            self.instrument
                .drain_ns
                .record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// One idle-worker drain sweep (the `HyperHooks::drain_pending`
    /// hook): folds whatever pending views it can claim without ever
    /// blocking, moving hypermerge work off the steal/join critical
    /// path. Returns the number of views folded.
    pub fn idle_drain(&self) -> usize {
        // The caller is idle: reclaim the map pool's retired node
        // shells too, so `MapPool::pop` (inside the latency-sensitive
        // transferal window) almost never has to sweep.
        self.public_pool.collect();
        if self.registry.pending_total() == 0 {
            return 0;
        }
        let t0 = std::time::Instant::now();
        let n = self.registry.drain_idle();
        if n != 0 {
            self.instrument
                .drain_ns
                .record(t0.elapsed().as_nanos() as u64);
        }
        n
    }

    /// Views currently parked on pending-merge lists — the
    /// `pending_depth` metric.
    pub fn pending_depth(&self) -> usize {
        self.registry.pending_total()
    }

    /// As [`DomainInner::push_pending`] but folds immediately; only for
    /// callers that already hold the reducer's serial borrow (the
    /// `Reducer` serial-point ops folding their own context view).
    ///
    /// # Safety
    ///
    /// `view` must be a live boxed view of the slot's monoid type, the
    /// slot must be registered, and the caller must hold the reducer's
    /// serial-access borrow.
    pub(crate) unsafe fn fold_into_leftmost_unguarded(&self, slot: Slot, view: *mut u8) {
        let entry = self
            .leftmost_entry(slot)
            .unwrap_or_else(|| panic!("views outlive reducer for slot {slot}"));
        let inst = MonoidInstance::from_erased(entry.monoid);
        inst.reduce_into(entry.view, view);
    }

    /// Takes an empty public SPA map from the global pool (or a fresh
    /// one — allocated with no lock held, unlike the old mutex pool,
    /// which constructed fresh maps *inside* its critical section).
    pub(crate) fn take_public_map(&self) -> SpaMapBox {
        self.public_pool.pop().unwrap_or_default()
    }

    /// Returns empty public SPA maps to the global pool.
    pub(crate) fn recycle_public_maps(&self, maps: impl IntoIterator<Item = SpaMapBox>) {
        for m in maps {
            debug_assert!(m.as_ref().is_empty(), "recycling a non-empty public map");
            self.public_pool.push(m);
        }
    }

    /// Number of live reducers (registered leftmost entries) — test aid.
    pub fn live_reducers(&self) -> usize {
        self.registry.live()
    }

    /// The simulated physical-page arena backing the workers' TLMM
    /// regions (diagnostics and leak tests).
    pub fn arena_handle(&self) -> &Arc<PageArena> {
        &self.arena
    }
}

impl cilkm_obs::MetricsSource for DomainInner {
    fn collect(&self, out: &mut cilkm_obs::metrics::MetricsCollector) {
        let i = &self.instrument;
        out.counter("lookups", i.lookups.get());
        out.counter("view_creations", i.view_creations.get());
        out.counter("view_insertions", i.view_insertions.get());
        out.counter("transferals", i.transferals.get());
        out.counter("transferal_views", i.transferal_views.get());
        out.counter("transferal_copied_views", i.transferal_copied_views.get());
        out.counter(
            "transferal_exchanged_pages",
            i.transferal_exchanged_pages.get(),
        );
        out.counter("merges", i.merges.get());
        out.counter("merge_pairs", i.merge_pairs.get());
        out.counter("log_overflows", i.log_overflows.get());
        out.counter("pending_views", i.pending_views.get());
        out.counter("pending_depth", self.registry.pending_total() as u64);
        out.histogram("view_creation_ns", i.view_creation_ns.snapshot());
        out.histogram("view_insertion_ns", i.view_insertion_ns.snapshot());
        out.histogram("transferal_ns", i.transferal_ns.snapshot());
        out.histogram("merge_ns", i.merge_ns.snapshot());
        out.histogram("drain_ns", i.drain_ns.snapshot());
        let c = self.arena.crossings().snapshot();
        out.counter("palloc_calls", c.palloc_calls);
        out.counter("palloc_pages", c.palloc_pages);
        out.counter("pfree_calls", c.pfree_calls);
        out.counter("pmap_calls", c.pmap_calls);
        out.counter("pmap_pages", c.pmap_pages);
    }
}

/// A work-stealing pool with a reducer mechanism installed — one "runtime
/// system" in the paper's sense. Construct one per experiment arm:
/// `ReducerPool::new(16, Backend::Mmap)` is Cilk-M 1.0,
/// `ReducerPool::new(16, Backend::Hypermap)` is Cilk Plus.
pub struct ReducerPool {
    pool: Pool,
    domain: Arc<DomainInner>,
}

impl ReducerPool {
    /// Creates a pool of `threads` workers running the given backend.
    pub fn new(threads: usize, backend: Backend) -> ReducerPool {
        Self::with_stack_size(threads, backend, 8 << 20)
    }

    /// As [`ReducerPool::new`] with an explicit worker stack size.
    pub fn with_stack_size(threads: usize, backend: Backend, stack: usize) -> ReducerPool {
        let domain = Arc::new(DomainInner::new(backend));
        let base = match backend {
            Backend::Hypermap => "domain.hypermap",
            Backend::Mmap => "domain.mmap",
        };
        let weak = Arc::downgrade(&domain);
        cilkm_obs::metrics::global()
            .register(base, weak as std::sync::Weak<dyn cilkm_obs::MetricsSource>);
        let hooks: Arc<dyn HyperHooks> = match backend {
            Backend::Hypermap => Arc::new(crate::hypermap::HypermapHooks::new(Arc::clone(&domain))),
            Backend::Mmap => Arc::new(crate::mmap::MmapHooks::new(Arc::clone(&domain))),
        };
        let pool = PoolBuilder::new(threads)
            .hooks(hooks)
            .stack_size(stack)
            .build();
        ReducerPool { pool, domain }
    }

    /// Runs `f` as a parallel region; reducer final values are folded into
    /// leftmost storage before this returns.
    pub fn run<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        self.pool.run(f)
    }

    /// As [`ReducerPool::run`], additionally collecting the scheduler and
    /// reducer event trace of the region (empty without the `trace`
    /// feature; see `cilkm_runtime::Pool::run_traced` for caveats).
    pub fn run_traced<F, R>(&self, f: F) -> (R, cilkm_obs::Trace)
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        self.pool.run_traced(f)
    }

    /// As [`ReducerPool::run`], additionally measuring work, span, and
    /// burdened span of the region with the online Cilkview-style
    /// accumulator (zeros without the `trace` feature; see
    /// `cilkm_runtime::Pool::run_profiled` for caveats).
    pub fn run_profiled<F, R>(&self, f: F) -> (R, cilkm_obs::ParallelismReport)
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        self.pool.run_profiled(f)
    }

    /// Number of workers.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Which backend this pool runs.
    pub fn backend(&self) -> Backend {
        self.domain.backend
    }

    /// The shared domain (for creating reducers and reading instruments).
    pub fn domain(&self) -> &Arc<DomainInner> {
        &self.domain
    }

    /// Scheduler statistics (steals etc.).
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Reducer-mechanism instrumentation totals.
    pub fn instrument(&self) -> InstrumentSnapshot {
        self.domain.instrument()
    }

    /// The four §8 overhead categories as latency distributions (the
    /// histogram sums are the [`InstrumentSnapshot`] nanosecond totals).
    pub fn overhead_histograms(&self) -> ReduceHistograms {
        self.domain.overhead_histograms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_recycled() {
        let d = DomainInner::new(Backend::Mmap);
        let a = d.alloc_slot();
        let b = d.alloc_slot();
        assert_ne!(a, b);
        d.free_slot(a);
        assert_eq!(d.alloc_slot(), a);
    }

    #[test]
    fn leftmost_registry_roundtrip() {
        let d = DomainInner::new(Backend::Hypermap);
        let s = d.alloc_slot();
        let view = Box::into_raw(Box::new(5u64)) as *mut u8;
        d.register_leftmost(s, view, std::ptr::null());
        assert_eq!(d.live_reducers(), 1);
        let e = d.leftmost_entry(s).unwrap();
        assert_eq!(e.view, view);
        let v = d.unregister_leftmost(s).unwrap();
        // SAFETY: the view was `Box::into_raw`ed above and unregistering
        // returned the sole remaining pointer to it.
        unsafe { drop(Box::from_raw(v as *mut u64)) };
        assert_eq!(d.live_reducers(), 0);
        assert!(d.leftmost_entry(s).is_none());
    }

    #[test]
    fn public_map_pool_recycles() {
        let d = DomainInner::new(Backend::Mmap);
        let m = d.take_public_map();
        d.recycle_public_maps([m]);
        let _m2 = d.take_public_map(); // reused, no assertion = fine
    }

    #[test]
    fn serial_word_excludes_users_and_drainers() {
        let d = DomainInner::new(Backend::Mmap);
        let s = d.alloc_slot();
        let view = Box::into_raw(Box::new(0u64)) as *mut u8;
        d.register_leftmost(s, view, std::ptr::null());
        let b = d.serial_user(s);
        drop(b);
        let _b2 = d.serial_user(s);
        drop(_b2);
        let v = d.unregister_leftmost(s).unwrap();
        // SAFETY: sole remaining pointer, as registered above.
        unsafe { drop(Box::from_raw(v as *mut u64)) };
    }

    #[test]
    #[should_panic(expected = "concurrent serial access")]
    fn serial_borrow_panics_on_overlap() {
        let d = DomainInner::new(Backend::Mmap);
        let s = d.alloc_slot();
        let _a = d.serial_user(s);
        let _b = d.serial_user(s);
    }

    #[test]
    fn pending_views_fold_on_idle_drain() {
        let d = DomainInner::new(Backend::Mmap);
        let monoid = std::sync::Arc::new(crate::library::SumMonoid::<u64>::new());
        let inst = MonoidInstance::new(&monoid);
        let s = d.alloc_slot();
        let view = Box::into_raw(Box::new(1u64)) as *mut u8;
        d.register_leftmost(s, view, inst.as_erased());
        for add in [2u64, 3, 4] {
            let v = Box::into_raw(Box::new(add)) as *mut u8;
            // SAFETY: live boxed u64 views of the registered SumMonoid.
            unsafe { d.push_pending(s, v) };
        }
        assert_eq!(d.pending_depth(), 3);
        assert_eq!(d.idle_drain(), 3);
        assert_eq!(d.pending_depth(), 0);
        assert_eq!(d.idle_drain(), 0, "second drain finds nothing");
        let v = d.unregister_leftmost(s).unwrap();
        // SAFETY: sole remaining pointer after unregister.
        let total = unsafe { *Box::from_raw(v as *mut u64) };
        assert_eq!(total, 10, "1 + 2 + 3 + 4 folded into leftmost");
        assert_eq!(d.instrument.pending_views.get(), 3);
    }

    #[test]
    fn domain_appears_in_the_global_metrics_registry() {
        let pool = ReducerPool::new(2, Backend::Mmap);
        pool.run(|| ());
        let snap = cilkm_obs::metrics::global().snapshot();
        // Other tests register domains concurrently, so just require that
        // some mmap domain exports the expected counter and histogram
        // vocabulary (prefixes are uniquified as domain.mmap, #2, ...).
        assert!(
            snap.values
                .keys()
                .any(|k| k.starts_with("domain.mmap") && k.ends_with(".lookups")),
            "no domain.mmap*.lookups key in {:?}",
            snap.values.keys().collect::<Vec<_>>()
        );
        assert!(snap
            .values
            .keys()
            .any(|k| k.starts_with("domain.mmap") && k.ends_with(".merge_ns")));
        drop(pool);
    }

    #[test]
    fn pools_construct_for_both_backends() {
        let h = ReducerPool::new(2, Backend::Hypermap);
        let m = ReducerPool::new(2, Backend::Mmap);
        assert_eq!(h.backend(), Backend::Hypermap);
        assert_eq!(m.backend(), Backend::Mmap);
        assert_eq!(h.run(|| 1 + 1), 2);
        assert_eq!(m.run(|| 2 + 2), 4);
    }
}
