//! Model-switchable synchronization facade for the reducer core — the
//! same pattern as `cilkm-runtime/src/msync.rs` and
//! `cilkm-obs/src/msync.rs` (see DESIGN.md §10, and §12 for the lint
//! that enforces it).
//!
//! The core's synchronization surface is small but load-bearing: the
//! per-reducer **serial-access flag** (an `AtomicBool` raced by
//! region-end folds against serial-path accesses) and the domain's
//! slot/leftmost/pool **mutexes**. Importing them through this module
//! keeps them zero-cost aliases of the real primitives in normal builds
//! while letting `--features model` swap in `cilkm_checker`'s recorded
//! versions, so the serial-exclusion protocol is explorable under
//! `cilkm_checker::model(..)` like the scheduler's protocols already
//! are.

#[cfg(feature = "model")]
pub(crate) use cilkm_checker::sync::atomic;
#[cfg(not(feature = "model"))]
pub(crate) use std::sync::atomic;

#[cfg(feature = "model")]
pub(crate) use cilkm_checker::sync::Mutex;
#[cfg(not(feature = "model"))]
pub(crate) use parking_lot::Mutex;
