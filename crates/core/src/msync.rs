//! Model- and sanitizer-switchable synchronization facade for the
//! reducer core — the same pattern as `cilkm-runtime/src/msync.rs` and
//! `cilkm-obs/src/msync.rs` (see DESIGN.md §10, and §12 for the lint
//! that enforces it).
//!
//! Since the lock-free view-lifecycle rework (DESIGN.md §13) the core
//! holds no mutexes at all: its synchronization surface is the atomics
//! behind the slot registry's per-slot cells, the pending-merge and
//! free-list Treiber stacks, the public-map pool, and the hazard-era
//! collector (`reclaim`). Importing them through this module keeps them
//! zero-cost aliases of `std::sync::atomic` in normal builds while
//! letting `--features model` swap in `cilkm_checker`'s recorded
//! versions and `--features sanitize` swap in `cilkm_san`'s
//! instrumented versions (real primitives + the dynamic race detectors
//! of DESIGN.md §17; `model` wins when both features are on).

#[cfg(feature = "model")]
pub(crate) use cilkm_checker::sync::atomic;
#[cfg(all(not(feature = "model"), feature = "sanitize"))]
pub(crate) use cilkm_san::sync::atomic;
#[cfg(not(any(feature = "model", feature = "sanitize")))]
pub(crate) use std::sync::atomic;

/// One spin-wait beat inside a loop that waits on another thread's
/// atomic progress. In normal builds a CPU relax hint; under the model
/// a scheduling point, so the checker can run the thread being waited
/// on instead of counting the spin as a livelock.
// lint: allow(san-hook-coverage, pure CPU relax hint; no memory effect to trace)
#[inline]
pub(crate) fn spin_hint() {
    #[cfg(feature = "model")]
    cilkm_checker::thread::yield_now();
    #[cfg(not(feature = "model"))]
    std::hint::spin_loop();
}
