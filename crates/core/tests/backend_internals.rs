//! White-box-ish tests of the backend machinery through the public API:
//! TLMM page accounting, suspend/resume integrity under leapfrogging,
//! SPA log overflow in vivo, and `set`/`move_in` semantics.

use cilkm_core::library::{ListMonoid, StringMonoid, SumMonoid};
use cilkm_core::{Backend, Reducer, ReducerPool};
use cilkm_runtime::{join, parallel_for};

#[test]
#[cfg_attr(miri, ignore = "spawns OS worker threads")]
fn mmap_backend_performs_pmaps_and_pallocs() {
    let pool = ReducerPool::new(2, Backend::Mmap);
    // Per-domain counters: the pool's own arena, so concurrent tests
    // cannot bleed into the deltas.
    let before = pool.domain().arena_handle().crossings().snapshot();
    let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
    pool.run(|| {
        parallel_for(0..10_000, 64, &|range| {
            for _ in range {
                r.add(1);
            }
        });
    });
    assert_eq!(r.into_inner(), 10_000);
    let delta = pool
        .domain()
        .arena_handle()
        .crossings()
        .snapshot()
        .since(&before);
    assert!(delta.palloc_calls >= 1, "private pages must be allocated");
    assert!(delta.pmap_calls >= 1, "pages must be mapped via sys_pmap");
}

#[test]
#[cfg_attr(miri, ignore = "spawns OS worker threads")]
fn hypermap_backend_touches_no_tlmm() {
    // Serial region only: steals could not occur, but more importantly
    // the hypermap backend must never use the TLMM substrate at all —
    // its domain's arena counters must stay exactly zero.
    let pool = ReducerPool::new(1, Backend::Hypermap);
    let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
    pool.run(|| {
        for _ in 0..10_000 {
            r.add(1);
        }
    });
    assert_eq!(r.into_inner(), 10_000);
    let delta = pool.domain().arena_handle().crossings().snapshot();
    assert_eq!(delta.pmap_calls, 0);
    assert_eq!(delta.palloc_calls, 0);
}

#[test]
#[cfg_attr(miri, ignore = "spawns OS worker threads")]
fn spa_log_overflow_happens_in_vivo_past_120_reducers() {
    // More than LOG_CAPACITY (120) reducers live on one private page:
    // a context that touches them all overflows its SPA log. The final
    // values must be exact regardless.
    let pool = ReducerPool::new(2, Backend::Mmap);
    let rs: Vec<Reducer<SumMonoid<u64>>> = (0..200)
        .map(|_| Reducer::new(&pool, SumMonoid::new(), 0))
        .collect();
    for _ in 0..5 {
        pool.run(|| {
            parallel_for(0..200, 1, &|range| {
                for i in range {
                    rs[i].add(1);
                }
            });
        });
    }
    for (i, r) in rs.iter().enumerate() {
        assert_eq!(r.get_cloned(), 5, "reducer {i}");
    }
    // Overflows are likely but depend on stealing; only assert the
    // instrument is consistent (no negative-looking wrap).
    let snap = pool.instrument();
    assert!(snap.view_insertions >= snap.log_overflows);
}

#[test]
#[cfg_attr(miri, ignore = "spawns OS worker threads")]
fn deep_leapfrogging_preserves_suspended_views() {
    // A worker waiting at a join executes other stolen work
    // (leapfrogging); its suspended context's views must come back
    // intact. Nested joins + a non-commutative reducer make any
    // suspend/resume corruption visible as a wrong final string.
    for backend in [Backend::Hypermap, Backend::Mmap] {
        let pool = ReducerPool::new(4, backend);
        let s = Reducer::new(&pool, StringMonoid::new(), String::new());

        fn go(depth: u32, s: &Reducer<StringMonoid>) {
            if depth == 0 {
                s.append("x");
                return;
            }
            s.append("(");
            join(|| go(depth - 1, s), || go(depth - 1, s));
            s.append(")");
        }

        pool.run(|| go(10, &s));

        fn expect(depth: u32, out: &mut String) {
            if depth == 0 {
                out.push('x');
                return;
            }
            out.push('(');
            expect(depth - 1, out);
            expect(depth - 1, out);
            out.push(')');
        }
        let mut want = String::new();
        expect(10, &mut want);
        assert_eq!(s.into_inner(), want, "backend {backend:?}");
    }
}

#[test]
#[cfg_attr(miri, ignore = "spawns OS worker threads")]
fn set_replaces_and_discards() {
    for backend in [Backend::Hypermap, Backend::Mmap] {
        let pool = ReducerPool::new(2, backend);
        let r = Reducer::new(&pool, ListMonoid::<u32>::new(), vec![1, 2]);
        pool.run(|| {
            parallel_for(0..100, 4, &|range| {
                for i in range {
                    r.push(i as u32);
                }
            });
        });
        // move_in: everything accumulated is discarded.
        r.set(vec![42]);
        assert_eq!(r.get_cloned(), vec![42]);
        // And the reducer is fully usable afterwards.
        pool.run(|| r.push(7));
        assert_eq!(r.into_inner(), vec![42, 7], "backend {backend:?}");
    }
}

#[test]
#[cfg_attr(miri, ignore = "spawns OS worker threads")]
fn set_mid_region_at_serial_point() {
    for backend in [Backend::Hypermap, Backend::Mmap] {
        let pool = ReducerPool::new(2, backend);
        let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
        let final_value = pool.run(|| {
            parallel_for(0..50, 4, &|range| {
                for _ in range {
                    r.add(1);
                }
            });
            r.set(1000); // serial point in the spine
            parallel_for(0..50, 4, &|range| {
                for _ in range {
                    r.add(1);
                }
            });
            r.take()
        });
        assert_eq!(final_value, 1050, "backend {backend:?}");
    }
}

#[test]
#[cfg_attr(miri, ignore = "spawns OS worker threads")]
fn arena_pages_are_reclaimed_when_pool_drops() {
    let pool = ReducerPool::new(4, Backend::Mmap);
    let arena = std::sync::Arc::clone(pool.domain().arena_handle());
    let r = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
    pool.run(|| {
        parallel_for(0..10_000, 32, &|range| {
            for _ in range {
                r.add(1);
            }
        });
    });
    assert_eq!(r.into_inner(), 10_000);
    assert!(arena.live_pages() > 0, "workers hold private pages");
    drop(pool);
    assert_eq!(
        arena.live_pages(),
        0,
        "all simulated physical pages freed at pool teardown"
    );
}
