//! Property tests for the graph substrate: bags conserve elements under
//! arbitrary operation sequences, and PBFS agrees with serial BFS on
//! arbitrary random graphs.

use cilkm_core::{Backend, ReducerPool};
use cilkm_graph::{bfs_serial, check_bag_invariant, pbfs, Bag, Graph};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum BagOp {
    Insert(u16),
    UnionFresh(Vec<u16>),
}

fn bag_ops() -> impl Strategy<Value = Vec<BagOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => any::<u16>().prop_map(BagOp::Insert),
            1 => proptest::collection::vec(any::<u16>(), 0..64).prop_map(BagOp::UnionFresh),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A bag is a faithful multiset under inserts and unions.
    #[test]
    fn bag_conserves_multiset(ops in bag_ops()) {
        let mut bag: Bag<u16> = Bag::new();
        let mut model: BTreeMap<u16, usize> = BTreeMap::new();
        for op in ops {
            match op {
                BagOp::Insert(x) => {
                    bag.insert(x);
                    *model.entry(x).or_default() += 1;
                }
                BagOp::UnionFresh(xs) => {
                    let mut other = Bag::new();
                    for x in &xs {
                        other.insert(*x);
                        *model.entry(*x).or_default() += 1;
                    }
                    bag.union(other);
                }
            }
            prop_assert!(check_bag_invariant(&bag));
        }
        let expected: usize = model.values().sum();
        prop_assert_eq!(bag.len(), expected);
        let mut got: BTreeMap<u16, usize> = BTreeMap::new();
        bag.for_each(|x| *got.entry(*x).or_default() += 1);
        prop_assert_eq!(got, model);
    }

    /// PBFS computes exactly the serial BFS distances on random graphs,
    /// on both backends.
    #[test]
    fn pbfs_equals_serial_on_random_graphs(
        n in 2usize..120,
        edges in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..400),
        undirected in any::<bool>(),
    ) {
        let list: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| ((a as usize % n) as u32, (b as usize % n) as u32))
            .collect();
        let g = if undirected {
            Graph::from_undirected_edges(n, &list)
        } else {
            Graph::from_edges(n, &list)
        };
        let expect = bfs_serial(&g, 0);
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(2, backend);
            let got = pbfs(&pool, &g, 0, 8).distances;
            prop_assert_eq!(&got, &expect, "backend {:?}", backend);
        }
    }
}
