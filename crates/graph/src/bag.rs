//! The bag data structure of Leiserson & Schardl's PBFS (SPAA 2010): an
//! unordered-set container with O(1) amortized insertion and O(log n)
//! union, built from *pennants*.
//!
//! A **pennant** of size 2^k is a tree whose root has exactly one child,
//! that child being a complete binary tree of 2^k − 1 nodes. Two pennants
//! of equal size combine into one of twice the size in constant time, and
//! the combination is reversible (split). A **bag** is a sequence of
//! pennants of distinct sizes — the binary representation of its element
//! count — so inserting is binary increment (amortized O(1)) and bag
//! union is binary addition (O(log n)).
//!
//! Bag union is associative with the empty bag as identity, which is
//! exactly what makes the bag a reducer ([`BagMonoid`]): PBFS declares
//! its "next layer" bag as a reducer so logically parallel branches can
//! insert discovered vertices without determinacy races.

use cilkm_core::Monoid;
use cilkm_runtime::join;

/// One node of a pennant's complete binary tree.
struct Node<T> {
    value: T,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

/// A pennant holding exactly 2^k elements.
pub struct Pennant<T> {
    root: Box<Node<T>>,
    k: u8,
}

impl<T> Pennant<T> {
    /// A singleton pennant (k = 0).
    pub fn singleton(value: T) -> Pennant<T> {
        Pennant {
            root: Box::new(Node {
                value,
                left: None,
                right: None,
            }),
            k: 0,
        }
    }

    /// Number of elements: 2^k.
    pub fn len(&self) -> usize {
        1usize << self.k
    }

    /// Always `false` — pennants are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Combines two pennants of equal size into one of twice the size,
    /// in constant time (FIG. "pennant union" of the PBFS paper).
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn union(mut self, mut other: Pennant<T>) -> Pennant<T> {
        assert_eq!(self.k, other.k, "pennant union requires equal sizes");
        other.root.right = self.root.left.take();
        self.root.left = Some(other.root);
        self.k += 1;
        self
    }

    /// Splits a pennant of size 2^(k+1) back into two of size 2^k —
    /// the constant-time inverse of [`Pennant::union`].
    ///
    /// # Panics
    ///
    /// Panics on a singleton.
    pub fn split(mut self) -> (Pennant<T>, Pennant<T>) {
        assert!(self.k > 0, "cannot split a singleton pennant");
        let mut other_root = self.root.left.take().expect("k > 0 implies child");
        self.root.left = other_root.right.take();
        self.k -= 1;
        let other = Pennant {
            root: other_root,
            k: self.k,
        };
        (self, other)
    }

    /// Serial in-order visit of every element.
    pub fn for_each(&self, f: &mut impl FnMut(&T)) {
        fn walk<T>(node: &Node<T>, f: &mut impl FnMut(&T)) {
            f(&node.value);
            if let Some(l) = &node.left {
                walk(l, f);
            }
            if let Some(r) = &node.right {
                walk(r, f);
            }
        }
        walk(&self.root, f);
    }

    /// Parallel visit: subtrees above `grain` elements are processed as
    /// separate fork-join branches. `f` observes each element exactly
    /// once; no visit order is guaranteed (bags are unordered).
    pub fn for_each_parallel<F>(&self, grain: usize, f: &F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        self.for_each_parallel_grains(grain, &|| (), &|(), x| f(x), &|()| {});
    }

    /// Parallel visit with per-grain state: each serial grain of the
    /// traversal gets `init()` state, every element in the grain is fed
    /// to `body`, and `flush` consumes the state when the grain ends.
    ///
    /// This is the shape PBFS needs: the grain state is a buffer of
    /// discovered vertices, and `flush` performs one reducer access per
    /// grain rather than one per element — which is why the paper's
    /// Figure 10(b) lookup counts are thousands, not millions.
    pub fn for_each_parallel_grains<S, I, B, FL>(
        &self,
        grain: usize,
        init: &I,
        body: &B,
        flush: &FL,
    ) where
        T: Sync,
        I: Fn() -> S + Sync,
        B: Fn(&mut S, &T) + Sync,
        FL: Fn(S) + Sync,
    {
        fn walk_serial<T, S>(node: &Node<T>, state: &mut S, body: &impl Fn(&mut S, &T)) {
            body(state, &node.value);
            if let Some(l) = &node.left {
                walk_serial(l, state, body);
            }
            if let Some(r) = &node.right {
                walk_serial(r, state, body);
            }
        }

        fn walk_par<T, S, I, B, FL>(
            node: &Node<T>,
            size_hint: usize,
            grain: usize,
            init: &I,
            body: &B,
            flush: &FL,
        ) where
            T: Sync,
            I: Fn() -> S + Sync,
            B: Fn(&mut S, &T) + Sync,
            FL: Fn(S) + Sync,
        {
            if size_hint <= grain {
                let mut state = init();
                walk_serial(node, &mut state, body);
                flush(state);
                return;
            }
            {
                let mut state = init();
                body(&mut state, &node.value);
                flush(state);
            }
            let half = size_hint / 2;
            match (&node.left, &node.right) {
                (Some(l), Some(r)) => {
                    join(
                        || walk_par(l, half, grain, init, body, flush),
                        || walk_par(r, half, grain, init, body, flush),
                    );
                }
                (Some(l), None) => walk_par(l, size_hint - 1, grain, init, body, flush),
                (None, Some(r)) => walk_par(r, size_hint - 1, grain, init, body, flush),
                (None, None) => {}
            }
        }
        walk_par(&self.root, self.len(), grain.max(1), init, body, flush);
    }
}

/// An unordered multiset with O(1) insert and O(log n) union.
pub struct Bag<T> {
    /// `pennants[k]` holds the pennant of size 2^k, if the k-th bit of
    /// `len` is set — the binary-counter backbone.
    pennants: Vec<Option<Pennant<T>>>,
    len: usize,
}

impl<T> Bag<T> {
    /// An empty bag.
    pub fn new() -> Bag<T> {
        Bag {
            pennants: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bag holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts one element: binary increment over the pennant array.
    pub fn insert(&mut self, value: T) {
        let mut carry = Pennant::singleton(value);
        let mut k = 0usize;
        loop {
            if k == self.pennants.len() {
                self.pennants.push(Some(carry));
                break;
            }
            match self.pennants[k].take() {
                None => {
                    self.pennants[k] = Some(carry);
                    break;
                }
                Some(existing) => {
                    carry = existing.union(carry);
                    k += 1;
                }
            }
        }
        self.len += 1;
    }

    /// Unions `other` into `self`: binary addition over pennant arrays.
    pub fn union(&mut self, other: Bag<T>) {
        let mut carry: Option<Pennant<T>> = None;
        let other_len = other.len;
        let max_k = self.pennants.len().max(other.pennants.len()) + 1;
        let mut other_pennants = other.pennants;
        other_pennants.resize_with(max_k, || None);
        if self.pennants.len() < max_k {
            self.pennants.resize_with(max_k, || None);
        }
        for (k, b_slot) in other_pennants.iter_mut().enumerate() {
            let a = self.pennants[k].take();
            let b = b_slot.take();
            // Full adder over pennants.
            let (sum, new_carry) = match (a, b, carry.take()) {
                (None, None, None) => (None, None),
                (Some(x), None, None) | (None, Some(x), None) | (None, None, Some(x)) => {
                    (Some(x), None)
                }
                (Some(x), Some(y), None) | (Some(x), None, Some(y)) | (None, Some(x), Some(y)) => {
                    (None, Some(x.union(y)))
                }
                (Some(x), Some(y), Some(z)) => (Some(z), Some(x.union(y))),
            };
            self.pennants[k] = sum;
            carry = new_carry;
        }
        debug_assert!(carry.is_none(), "max_k accounted for the final carry");
        self.len += other_len;
    }

    /// Serial visit of every element.
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        for p in self.pennants.iter().flatten() {
            p.for_each(&mut f);
        }
    }

    /// Parallel visit: pennants fork from large to small, and large
    /// pennants recurse internally (see [`Pennant::for_each_parallel`]).
    pub fn for_each_parallel<F>(&self, grain: usize, f: &F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        fn go<T: Sync, F: Fn(&T) + Sync>(pennants: &[Option<Pennant<T>>], grain: usize, f: &F) {
            match pennants.len() {
                0 => {}
                1 => {
                    if let Some(p) = &pennants[0] {
                        p.for_each_parallel(grain, f);
                    }
                }
                n => {
                    let (lo, hi) = pennants.split_at(n / 2);
                    join(|| go(lo, grain, f), || go(hi, grain, f));
                }
            }
        }
        go(&self.pennants, grain, f);
    }

    /// Parallel visit with per-grain state — see
    /// [`Pennant::for_each_parallel_grains`]. Each serial grain of the
    /// whole-bag traversal receives `init()` state and a final `flush`.
    pub fn for_each_parallel_grains<S, I, B, FL>(
        &self,
        grain: usize,
        init: &I,
        body: &B,
        flush: &FL,
    ) where
        T: Sync,
        I: Fn() -> S + Sync,
        B: Fn(&mut S, &T) + Sync,
        FL: Fn(S) + Sync,
    {
        fn go<T, S, I, B, FL>(
            pennants: &[Option<Pennant<T>>],
            grain: usize,
            init: &I,
            body: &B,
            flush: &FL,
        ) where
            T: Sync,
            I: Fn() -> S + Sync,
            B: Fn(&mut S, &T) + Sync,
            FL: Fn(S) + Sync,
        {
            match pennants.len() {
                0 => {}
                1 => {
                    if let Some(p) = &pennants[0] {
                        p.for_each_parallel_grains(grain, init, body, flush);
                    }
                }
                n => {
                    let (lo, hi) = pennants.split_at(n / 2);
                    join(
                        || go(lo, grain, init, body, flush),
                        || go(hi, grain, init, body, flush),
                    );
                }
            }
        }
        go(&self.pennants, grain, init, body, flush);
    }

    /// Drains into a plain vector (test/diagnostic aid).
    pub fn into_vec(self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|x| out.push(x.clone()));
        out
    }
}

impl<T> Default for Bag<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Bag union as a monoid: the reducer PBFS declares its layers with.
#[derive(Default)]
pub struct BagMonoid<T: Send + 'static> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Send + 'static> BagMonoid<T> {
    /// A bag-union monoid.
    pub fn new() -> BagMonoid<T> {
        BagMonoid {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Send + 'static> Monoid for BagMonoid<T> {
    type View = Bag<T>;

    fn identity(&self) -> Bag<T> {
        Bag::new()
    }

    fn reduce(&self, left: &mut Bag<T>, right: Bag<T>) {
        left.union(right);
    }
}

/// Convenience: the vertex bag used by PBFS over a given graph.
pub type VertexBag = Bag<u32>;

/// Sanity helper for tests: the sum of pennant sizes must equal `len`.
pub fn check_bag_invariant<T>(bag: &Bag<T>) -> bool {
    let total: usize = bag
        .pennants
        .iter()
        .enumerate()
        .map(|(k, p)| if p.is_some() { 1usize << k } else { 0 })
        .sum();
    total == bag.len
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn collect(bag: &Bag<u32>) -> Vec<u32> {
        let mut v = Vec::new();
        bag.for_each(|x| v.push(*x));
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_counts_and_contains_all() {
        let mut b = Bag::new();
        for i in 0..100u32 {
            b.insert(i);
        }
        assert_eq!(b.len(), 100);
        assert!(check_bag_invariant(&b));
        assert_eq!(collect(&b), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn union_is_element_conserving() {
        let mut a = Bag::new();
        let mut b = Bag::new();
        for i in 0..37u32 {
            a.insert(i);
        }
        for i in 100..159u32 {
            b.insert(i);
        }
        a.union(b);
        assert_eq!(a.len(), 37 + 59);
        assert!(check_bag_invariant(&a));
        let got = collect(&a);
        let mut expect: Vec<u32> = (0..37).chain(100..159).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let mut a = Bag::new();
        for i in 0..5u32 {
            a.insert(i);
        }
        a.union(Bag::new());
        assert_eq!(a.len(), 5);
        let mut e = Bag::new();
        for i in 0..5u32 {
            e.insert(i);
        }
        let mut empty = Bag::new();
        empty.union(e);
        assert_eq!(empty.len(), 5);
    }

    #[test]
    fn pennant_union_split_roundtrip() {
        let p1 = Pennant::singleton(1u32);
        let p2 = Pennant::singleton(2u32);
        let u = p1.union(p2);
        assert_eq!(u.len(), 2);
        let (a, b) = u.split();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        let mut seen = Vec::new();
        a.for_each(&mut |x| seen.push(*x));
        b.for_each(&mut |x| seen.push(*x));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "equal sizes")]
    fn mismatched_pennant_union_panics() {
        let p1 = Pennant::singleton(1u32);
        let p2 = Pennant::singleton(2u32).union(Pennant::singleton(3));
        let _ = p1.union(p2);
    }

    #[test]
    fn duplicates_are_kept_multiset() {
        let mut b = Bag::new();
        b.insert(7u32);
        b.insert(7);
        b.insert(7);
        assert_eq!(b.len(), 3);
        let mut counts: HashMap<u32, u32> = HashMap::new();
        b.for_each(|x| *counts.entry(*x).or_default() += 1);
        assert_eq!(counts[&7], 3);
    }

    #[test]
    fn parallel_for_each_visits_exactly_once() {
        use cilkm_runtime::Pool;
        // lint: allow(raw-sync, test-only hit counters exercising the public Pool API from outside the runtime; the runtime's msync facade is pub(crate) and deliberately unreachable from here)
        use std::sync::atomic::{AtomicU32, Ordering};
        let mut b = Bag::new();
        for i in 0..1000u32 {
            b.insert(i);
        }
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        let pool = Pool::new(4);
        pool.run(|| {
            b.for_each_parallel(32, &|&x| {
                hits[x as usize].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn monoid_laws_for_bags() {
        let m = BagMonoid::<u32>::new();
        let mut v = m.identity();
        assert!(v.is_empty());
        let mut a = Bag::new();
        a.insert(1);
        m.reduce(&mut v, a);
        assert_eq!(v.len(), 1);
    }
}
