//! PBFS — the work-efficient parallel breadth-first search of Leiserson &
//! Schardl (SPAA 2010), the application benchmark of the reducer paper's
//! §8.
//!
//! The algorithm explores the graph layer by layer, alternating between
//! two bag structures: as it traverses the vertices of the current layer
//! (in parallel, by walking the bag's pennants fork-join style), it
//! inserts newly discovered vertices into the *next-layer bag, declared
//! as a reducer*, so logically parallel branches insert without
//! determinacy races.
//!
//! Two implementation details mirror the original and matter to the
//! evaluation:
//!
//! * **Chunked insertion** — discovered vertices are buffered per grain
//!   of traversal work and flushed into the bag reducer one batch at a
//!   time, so the number of reducer *lookups* is proportional to the
//!   number of chunks, not |V| (which is why Figure 10(b)'s lookup
//!   counts are thousands, not millions).
//! * **Atomic discovery** — each vertex's distance is claimed with a
//!   compare-and-swap. (The original exploits a benign race instead;
//!   CAS is the Rust-sound equivalent and does not change the lookup or
//!   reduce behaviour being measured.)

// lint: allow(raw-sync, the per-vertex distance CAS is data-plane application state — one atomic per graph vertex, millions per run; it is benchmark payload standing in for the paper's benign race, not a runtime protocol, and cannot feasibly be recorded by the checker)
use std::sync::atomic::{AtomicU32, Ordering};

use cilkm_core::{Reducer, ReducerPool};

use crate::bag::{Bag, BagMonoid};
use crate::csr::Graph;
use crate::UNREACHED;

/// Vertices a traversal grain buffers before flushing into the reducer.
const FLUSH_CHUNK: usize = 128;

/// What a PBFS run reports, beyond the distances themselves.
pub struct PbfsReport {
    /// BFS distances from the source ([`UNREACHED`] where unreachable).
    pub distances: Vec<u32>,
    /// Number of BFS layers processed (the eccentricity of the source
    /// plus one) — each layer is one reducer `take` epoch.
    pub layers: u32,
    /// Reducer lookups performed during the run (the Figure 10(b)
    /// "# lookups" column), from the domain's instrumentation.
    pub lookups: u64,
}

/// Per-run state shared by [`pbfs`] and [`pbfs_profiled`]: the distance
/// array, the next-layer bag reducer, and the lookup counter baseline.
struct PbfsRun {
    dist: Vec<AtomicU32>,
    next: Reducer<BagMonoid<u32>>,
    lookups_before: u64,
}

impl PbfsRun {
    fn new(pool: &ReducerPool, g: &Graph, source: u32) -> PbfsRun {
        let n = g.num_vertices();
        assert!((source as usize) < n);
        let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
        dist[source as usize].store(0, Ordering::Relaxed);
        PbfsRun {
            dist,
            next: Reducer::new(pool, BagMonoid::<u32>::new(), Bag::new()),
            lookups_before: pool.instrument().lookups,
        }
    }

    /// The parallel region's body: explore layer by layer until the
    /// frontier empties, returning the layer count.
    fn explore(&self, g: &Graph, source: u32, grain: usize) -> u32 {
        let mut current = Bag::new();
        current.insert(source);
        let mut d = 0u32;
        while !current.is_empty() {
            process_layer(g, &current, d, &self.dist, &self.next, grain);
            // Serial point in the region's spine: swap the layer bags —
            // take the reducer's accumulated bag and reset it to empty.
            current = self.next.take();
            d += 1;
        }
        d
    }

    fn finish(self, pool: &ReducerPool, layers: u32) -> PbfsReport {
        let lookups = pool.instrument().lookups - self.lookups_before;
        let distances = self.dist.into_iter().map(|a| a.into_inner()).collect();
        PbfsReport {
            distances,
            layers,
            lookups,
        }
    }
}

/// Runs PBFS over `pool`'s reducer backend and returns distances plus the
/// run report.
pub fn pbfs(pool: &ReducerPool, g: &Graph, source: u32, grain: usize) -> PbfsReport {
    let run = PbfsRun::new(pool, g, source);
    let layers = pool.run(|| run.explore(g, source, grain));
    run.finish(pool, layers)
}

/// As [`pbfs`], but runs the region under the online work/span profiler
/// ([`cilkm_core::ReducerPool::run_profiled`]) and returns the
/// [`cilkm_obs::ParallelismReport`] alongside the run report. The report
/// is all zeros unless the `trace` cargo feature is compiled in.
pub fn pbfs_profiled(
    pool: &ReducerPool,
    g: &Graph,
    source: u32,
    grain: usize,
) -> (PbfsReport, cilkm_obs::ParallelismReport) {
    let run = PbfsRun::new(pool, g, source);
    let (layers, profile) = pool.run_profiled(|| run.explore(g, source, grain));
    (run.finish(pool, layers), profile)
}

/// Traverses one layer's bag in parallel, claiming neighbors and
/// inserting the discovered ones into the next-layer bag reducer.
fn process_layer(
    g: &Graph,
    current: &Bag<u32>,
    d: u32,
    dist: &[AtomicU32],
    next: &Reducer<BagMonoid<u32>>,
    grain: usize,
) {
    // Per-grain buffered insertion: one buffer per serial grain of the
    // bag traversal, flushed into the reducer in FLUSH_CHUNK batches and
    // once at grain end.
    let flush_into_reducer = |buf: Vec<u32>| {
        if !buf.is_empty() {
            next.update(|bag| {
                for w in buf {
                    bag.insert(w);
                }
            });
        }
    };
    current.for_each_parallel_grains(
        grain,
        &Vec::new,
        &|buf: &mut Vec<u32>, &u: &u32| {
            for &v in g.neighbors(u) {
                if dist[v as usize]
                    .compare_exchange(UNREACHED, d + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    buf.push(v);
                    if buf.len() >= FLUSH_CHUNK {
                        flush_into_reducer(std::mem::take(buf));
                    }
                }
            }
        },
        &flush_into_reducer,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_serial;
    use crate::gen;
    use cilkm_core::Backend;

    fn check_graph(g: &Graph, source: u32) {
        let expect = bfs_serial(g, source);
        for backend in [Backend::Hypermap, Backend::Mmap] {
            let pool = ReducerPool::new(2, backend);
            let report = pbfs(&pool, g, source, 64);
            assert_eq!(report.distances, expect, "backend {backend:?}");
            let ecc = expect
                .iter()
                .filter(|&&x| x != UNREACHED)
                .max()
                .copied()
                .unwrap();
            assert_eq!(report.layers, ecc + 1);
            assert!(report.lookups > 0);
        }
    }

    #[test]
    fn pbfs_matches_serial_on_line() {
        let g =
            Graph::from_undirected_edges(64, &(0..63u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        check_graph(&g, 0);
    }

    #[test]
    fn pbfs_matches_serial_on_grid() {
        let g = gen::grid3d(8);
        check_graph(&g, 0);
    }

    #[test]
    fn pbfs_matches_serial_on_rmat() {
        let g = gen::rmat(10, 8000, 0.57, 0.19, 0.19, 3);
        check_graph(&g, 0);
    }

    #[test]
    fn pbfs_matches_serial_on_random() {
        let g = gen::path_threaded_random(3000, 20_000, 30, 5);
        check_graph(&g, 0);
    }

    #[test]
    fn pbfs_handles_disconnected_graphs() {
        let g = Graph::from_undirected_edges(10, &[(0, 1), (1, 2), (5, 6)]);
        check_graph(&g, 0);
    }

    #[test]
    fn pbfs_lookup_count_is_chunk_scale_not_vertex_scale() {
        // The Figure 10(b) property: lookups ≪ |V| thanks to chunking.
        let g = gen::path_threaded_random(20_000, 120_000, 25, 9);
        let pool = ReducerPool::new(2, Backend::Mmap);
        let report = pbfs(&pool, &g, 0, 64);
        assert!(
            report.lookups < (g.num_vertices() / 4) as u64,
            "lookups={} |V|={}",
            report.lookups,
            g.num_vertices()
        );
    }
}
