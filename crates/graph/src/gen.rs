//! Synthetic graph generators standing in for the paper's eight input
//! matrices (Figure 10(b)).
//!
//! The original inputs (kkt_power, freescale1, cage14, wikipedia,
//! grid3d200, rmat23, cage15, nlpkkt160) are large published sparse
//! matrices we do not ship. PBFS behaviour in the evaluation is governed
//! by three knobs — vertex count |V|, edge count |E|, and diameter D
//! (which sets the number of BFS layers and hence reducer epochs) — so
//! each stand-in generator targets those three, scaled by a configurable
//! factor so full runs fit on small machines:
//!
//! * `grid3d200` → a 3-D mesh (naturally high diameter);
//! * `rmat23` → an RMAT recursive-matrix graph with the Graph500
//!   skew (A=.57, B=.19, C=.19), naturally tiny diameter;
//! * `wikipedia` → a scale-free preferential-attachment-style graph with
//!   a moderate-diameter tail;
//! * the matrix-market matrices (kkt_power, freescale1, cage14/15,
//!   nlpkkt160) → degree-bounded random graphs threaded along a path to
//!   shape the diameter near the published value.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;

/// A named synthetic input mirroring one row of Figure 10(b).
pub struct NamedGraph {
    /// The original matrix name.
    pub name: &'static str,
    /// The generated graph.
    pub graph: Graph,
    /// The BFS source used by experiments (vertex 0, as generated to be
    /// connected from there).
    pub source: u32,
    /// The paper's published |V| (unscaled), for reporting.
    pub paper_vertices: f64,
    /// The paper's published |E| (unscaled), for reporting.
    pub paper_edges: f64,
    /// The paper's published diameter, for reporting.
    pub paper_diameter: u32,
}

/// An Erdős–Rényi-flavoured generator with a Hamiltonian-path backbone:
/// the path bounds the diameter from below being ~n/step and guarantees
/// connectivity; random chords bring the average degree up to
/// `edges/n` and the diameter down toward `target_diameter`.
///
/// Chord span is limited to ±`span`, where `span ≈ 2n/target_diameter`,
/// so BFS needs about `target_diameter` layers to cross the path.
pub fn path_threaded_random(n: usize, edges: usize, target_diameter: u32, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let span = ((2 * n) as u64 / target_diameter.max(1) as u64).max(2) as usize;
    let mut list = Vec::with_capacity(edges.max(n));
    for i in 0..n - 1 {
        list.push((i as u32, (i + 1) as u32));
    }
    while list.len() < edges / 2 {
        let u = rng.gen_range(0..n);
        let lo = u.saturating_sub(span);
        let hi = (u + span).min(n - 1);
        let v = rng.gen_range(lo..=hi);
        list.push((u as u32, v as u32));
    }
    Graph::from_undirected_edges(n, &list)
}

/// A 3-D mesh of `dim`³ vertices with 6-neighbor connectivity — the
/// grid3d analogue. Diameter is 3·(dim−1).
pub fn grid3d(dim: usize) -> Graph {
    let n = dim * dim * dim;
    let id = |x: usize, y: usize, z: usize| (x * dim * dim + y * dim + z) as u32;
    let mut edges = Vec::with_capacity(3 * n);
    for x in 0..dim {
        for y in 0..dim {
            for z in 0..dim {
                if x + 1 < dim {
                    edges.push((id(x, y, z), id(x + 1, y, z)));
                }
                if y + 1 < dim {
                    edges.push((id(x, y, z), id(x, y + 1, z)));
                }
                if z + 1 < dim {
                    edges.push((id(x, y, z), id(x, y, z + 1)));
                }
            }
        }
    }
    Graph::from_undirected_edges(n, &edges)
}

/// An RMAT recursive-matrix graph (Chakrabarti–Zhan–Faloutsos) with the
/// standard skewed quadrant probabilities; `scale` gives 2^scale
/// vertices. Produces the low-diameter, heavy-tailed degree structure of
/// the paper's `rmat23` input. A star from vertex 0 over a small sample
/// keeps the BFS source connected to the main component.
pub fn rmat(scale: u32, edges: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(edges / 2 + 64);
    for _ in 0..edges / 2 {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        list.push((u as u32, v as u32));
    }
    // Keep the source attached: a few spokes from 0 into the id space.
    for _ in 0..64.min(n as u32 - 1) {
        let v = rng.gen_range(1..n as u32);
        list.push((0, v));
    }
    Graph::from_undirected_edges(n, &list)
}

/// A scale-free graph by cheap preferential attachment: each new vertex
/// attaches to `m` targets chosen among endpoints of previous edges
/// (which biases toward high degree) — the wikipedia-like analogue.
pub fn scale_free(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n > m && m >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut list: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    let mut endpoints: Vec<u32> = vec![0];
    for v in 1..n as u32 {
        for _ in 0..m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            list.push((v, t));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    Graph::from_undirected_edges(n, &list)
}

/// The published Figure 10(b) characteristics (|V|, |E| in millions, D).
pub const PAPER_INPUTS: [(&str, f64, f64, u32); 8] = [
    ("kkt_power", 2.05e6, 12.76e6, 31),
    ("freescale1", 3.43e6, 17.1e6, 128),
    ("cage14", 1.51e6, 27.1e6, 43),
    ("wikipedia", 2.4e6, 41.9e6, 460),
    ("grid3d200", 8e6, 55.8e6, 598),
    ("rmat23", 2.3e6, 77.9e6, 8),
    ("cage15", 5.15e6, 99.2e6, 50),
    ("nlpkkt160", 8.35e6, 225.4e6, 163),
];

/// Generates the eight stand-in inputs, scaled down by `scale` (e.g.
/// `scale = 100.0` divides |V| and |E| by 100 while keeping the diameter
/// regime; diameters are scaled by ∛scale for mesh-like graphs so layer
/// counts stay in a realistic band).
pub fn paper_inputs(scale: f64, seed: u64) -> Vec<NamedGraph> {
    assert!(scale >= 1.0);
    let mut out = Vec::new();
    for (i, &(name, pv, pe, pd)) in PAPER_INPUTS.iter().enumerate() {
        let n = ((pv / scale) as usize).max(64);
        let e = ((pe / scale) as usize).max(4 * n);
        let seed = seed.wrapping_add(i as u64 * 0x9E37);
        let graph = match name {
            "grid3d200" => {
                // dim ≈ 200/∛scale keeps the mesh shape.
                let dim = ((200.0 / scale.cbrt()) as usize).max(4);
                grid3d(dim)
            }
            "rmat23" => {
                let sc = (n.next_power_of_two().trailing_zeros()).max(6);
                rmat(sc, e, 0.57, 0.19, 0.19, seed)
            }
            "wikipedia" => scale_free(n, (e / n / 2).max(2), seed),
            _ => {
                // Matrix-market style: diameter shaped via chord span.
                let d = ((pd as f64 / scale.cbrt()) as u32).max(4);
                path_threaded_random(n, e, d, seed)
            }
        };
        out.push(NamedGraph {
            name,
            graph,
            source: 0,
            paper_vertices: pv,
            paper_edges: pe,
            paper_diameter: pd,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_serial;
    use crate::UNREACHED;

    #[test]
    fn grid3d_has_mesh_shape() {
        let g = grid3d(5);
        assert_eq!(g.num_vertices(), 125);
        // Interior vertex has degree 6.
        let interior = (2 * 25 + 2 * 5 + 2) as u32;
        assert_eq!(g.degree(interior), 6);
        // Diameter along BFS from a corner is 3*(dim-1).
        let d = bfs_serial(&g, 0);
        let max = d.iter().filter(|&&x| x != UNREACHED).max().unwrap();
        assert_eq!(*max, 12);
    }

    #[test]
    fn path_threaded_is_connected_with_bounded_diameter() {
        let g = path_threaded_random(2000, 12_000, 40, 1);
        let d = bfs_serial(&g, 0);
        assert!(d.iter().all(|&x| x != UNREACHED), "connected");
        let max = *d.iter().max().unwrap();
        assert!(
            (10..=160).contains(&max),
            "diameter in the target regime, got {max}"
        );
    }

    #[test]
    fn rmat_has_low_diameter_and_skew() {
        let g = rmat(12, 60_000, 0.57, 0.19, 0.19, 7);
        let d = bfs_serial(&g, 0);
        let reached = d.iter().filter(|&&x| x != UNREACHED).count();
        assert!(reached > g.num_vertices() / 4, "giant component reached");
        let max = d
            .iter()
            .filter(|&&x| x != UNREACHED)
            .max()
            .copied()
            .unwrap();
        assert!(max <= 16, "rmat diameter tiny, got {max}");
        // Degree skew: max degree far above average.
        let avg = g.num_edges() / g.num_vertices();
        let dmax = (0..g.num_vertices() as u32)
            .map(|u| g.degree(u))
            .max()
            .unwrap();
        assert!(dmax > 8 * avg, "dmax={dmax} avg={avg}");
    }

    #[test]
    fn scale_free_is_skewed() {
        let g = scale_free(3000, 3, 11);
        let avg = g.num_edges() / g.num_vertices();
        let dmax = (0..g.num_vertices() as u32)
            .map(|u| g.degree(u))
            .max()
            .unwrap();
        assert!(dmax > 10 * avg, "dmax={dmax} avg={avg}");
    }

    #[test]
    fn paper_inputs_generate_all_eight() {
        let inputs = paper_inputs(4000.0, 42);
        assert_eq!(inputs.len(), 8);
        for g in &inputs {
            assert!(g.graph.num_vertices() >= 64, "{}", g.name);
            assert!(g.graph.num_edges() > 0, "{}", g.name);
        }
    }
}
