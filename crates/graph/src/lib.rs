//! # cilkm-graph — graphs, bags, and parallel breadth-first search
//!
//! The application benchmark of the SPAA 2012 evaluation is **PBFS**, the
//! work-efficient parallel breadth-first search of Leiserson and Schardl
//! (SPAA 2010), whose inner data structure — the *bag* — is declared as a
//! reducer so that logically parallel branches can insert newly
//! discovered vertices without races (§8 of the reducer paper).
//!
//! This crate supplies everything that experiment needs, from scratch:
//!
//! * [`Graph`] — a compressed-sparse-row graph;
//! * [`gen`] — synthetic generators standing in for the paper's eight
//!   input matrices (see `DESIGN.md` for the substitution argument);
//! * [`Bag`] / [`BagMonoid`] — the pennant-forest bag with O(1) insert
//!   and O(log n) union, plus parallel traversal;
//! * [`bfs_serial`] — the serial BFS baseline;
//! * [`pbfs()`](pbfs::pbfs) — layer-synchronous PBFS over bag reducers, runnable on
//!   either reducer backend.

#![deny(missing_docs)]

pub mod bag;
pub mod bfs;
pub mod csr;
pub mod gen;
pub mod pbfs;

pub use bag::{check_bag_invariant, Bag, BagMonoid, Pennant};
pub use bfs::bfs_serial;
pub use csr::Graph;
pub use pbfs::{pbfs, pbfs_profiled, PbfsReport};

/// Distance marker for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;
