//! Compressed-sparse-row graphs.

/// A directed graph in CSR form. Vertices are `0..num_vertices()`;
/// neighbors of `u` are a contiguous slice.
#[derive(Clone, Debug)]
pub struct Graph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list over `n` vertices. Parallel edges
    /// are kept (they are harmless to BFS and occur in RMAT generators);
    /// self-loops are kept too.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut degree = vec![0u64; n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge out of range");
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0u32; edges.len()];
        for &(u, v) in edges {
            let c = &mut cursor[u as usize];
            targets[*c as usize] = v;
            *c += 1;
        }
        Graph { offsets, targets }
    }

    /// Builds an *undirected* graph: every edge is inserted both ways.
    pub fn from_undirected_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut both = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            both.push((u, v));
            both.push((v, u));
        }
        Graph::from_edges(n, &both)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (arcs).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The vertex of maximum out-degree (useful as a BFS source).
    pub fn max_degree_vertex(&self) -> u32 {
        (0..self.num_vertices() as u32)
            .max_by_key(|&u| self.degree(u))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_adjacency() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = Graph::from_undirected_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn parallel_edges_and_self_loops_survive() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (1, 1)]);
        assert_eq!(g.neighbors(0), &[1, 1]);
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    fn max_degree_vertex_is_found() {
        let g = Graph::from_edges(3, &[(1, 0), (1, 2), (0, 2)]);
        assert_eq!(g.max_degree_vertex(), 1);
    }

    #[test]
    #[should_panic(expected = "edge out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 2)]);
    }
}
