//! Serial breadth-first search — the correctness oracle and serial
//! baseline for PBFS.

use crate::csr::Graph;
use crate::UNREACHED;

/// Computes BFS distances from `source`. Unreached vertices get
/// [`UNREACHED`].
pub fn bfs_serial(g: &Graph, source: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_graph_distances() {
        let g = Graph::from_undirected_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(bfs_serial(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_serial(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_marks_unreached() {
        let g = Graph::from_undirected_edges(4, &[(0, 1)]);
        let d = bfs_serial(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn shortest_path_not_first_path() {
        // 0→1→2→3 and a shortcut 0→3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let d = bfs_serial(&g, 0);
        assert_eq!(d[3], 1);
    }
}
