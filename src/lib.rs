//! # cilkm — memory-mapping support for reducer hyperobjects
//!
//! A from-scratch Rust reproduction of Lee, Shafi & Leiserson,
//! *Memory-Mapping Support for Reducer Hyperobjects* (SPAA 2012): a
//! Cilk-style work-stealing runtime with reducer hyperobjects implemented
//! two ways — the Cilk Plus **hypermap** baseline and the Cilk-M
//! **memory-mapped** mechanism built on (simulated) thread-local memory
//! mapping, thread-local indirection, SPA maps, and copying view
//! transferal.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`runtime`] (`cilkm-runtime`) — deque, scheduler, `join`,
//!   `parallel_for`, hyperobject hooks;
//! * [`core`](mod@core) (`cilkm-core`) — `Monoid`, `Reducer`,
//!   `ReducerPool`, both backends, the standard reducer library,
//!   instrumentation;
//! * [`tlmm`] (`cilkm-tlmm`) — the simulated TLMM-Linux substrate;
//! * [`spa`] (`cilkm-spa`) — sparse accumulators and the SPA map;
//! * [`graph`] (`cilkm-graph`) — CSR graphs, generators, bags, PBFS;
//! * [`obs`] (`cilkm-obs`) — the observability layer: per-worker event
//!   tracer (enable with the `trace` feature), unified metrics registry,
//!   Chrome-trace/CSV exporters, and trace analysis.
//!
//! ## Quick start
//!
//! ```
//! use cilkm::prelude::*;
//!
//! let pool = ReducerPool::new(4, Backend::Mmap);
//! let sum = Reducer::new(&pool, SumMonoid::<u64>::new(), 0);
//! pool.run(|| {
//!     parallel_for(0..1_000, 32, &|r| {
//!         for i in r {
//!             sum.add(i as u64);
//!         }
//!     });
//! });
//! assert_eq!(sum.into_inner(), 499_500);
//! ```

#![deny(missing_docs)]

pub use cilkm_core as core;
pub use cilkm_graph as graph;
pub use cilkm_obs as obs;
pub use cilkm_runtime as runtime;
/// The dynamic sanitizer (only present with the `sanitize` feature): race,
/// determinacy-race, lock-order and lifecycle detectors plus the report codec.
#[cfg(feature = "sanitize")]
pub use cilkm_san as san;
pub use cilkm_spa as spa;
pub use cilkm_tlmm as tlmm;

/// The most common imports in one place.
pub mod prelude {
    pub use cilkm_core::library::{
        AndMonoid, BitAndMonoid, BitOrMonoid, BitXorMonoid, FnMonoid, HolderMonoid, ListMonoid,
        MaxIndexMonoid, MaxMonoid, MinIndexMonoid, MinMonoid, OrMonoid, PrependListMonoid,
        StringMonoid, SumMonoid,
    };
    pub use cilkm_core::{Backend, Monoid, Reducer, ReducerPool};
    pub use cilkm_graph::{bfs_serial, pbfs, Bag, BagMonoid, Graph};
    pub use cilkm_runtime::{join, parallel_for, parallel_for_each, scope, Scope};
}
